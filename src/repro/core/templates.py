"""Template patterns and portfolios (paper Sections II-C and V-C).

A *template pattern* is a fixed-length local pattern: exactly ``k`` cells
of the k-by-k grid (4 cells for the paper's 4-by-4 submatrices, matching
the VALU's 4 multipliers).  A *portfolio* is an ordered set of at most 16
templates — the 4-bit ``t_idx`` field of the position encoding addresses
them — whose union must cover the whole grid so that every local pattern
is decomposable.

Table V's ten candidate portfolios are built from row-wise (RW),
column-wise (CW), block-wise (BW, 2x2 sampling windows), diagonal and
anti-diagonal families.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.bitmask import (
    DEFAULT_K,
    antidiag_mask,
    block_mask,
    col_mask,
    diag_mask,
    full_mask,
    popcount,
    render_mask,
    row_mask,
)

#: Maximum number of templates addressable by the 4-bit t_idx field.
MAX_TEMPLATES = 16


class PortfolioError(ValueError):
    """Raised when a portfolio violates the format constraints."""


@dataclasses.dataclass(frozen=True)
class Template:
    """One template pattern.

    Attributes
    ----------
    mask:
        Cell bitmask (bit ``r * k + c``).
    name:
        Short human-readable label, e.g. ``"RW0"`` or ``"BW(1,1)"``.
    kind:
        Family tag: ``"RW"``, ``"CW"``, ``"BW"``, ``"DIAG"``, ``"ADIAG"``
        or ``"CUSTOM"``.
    """

    mask: int
    name: str
    kind: str = "CUSTOM"

    def cells(self, k: int = DEFAULT_K) -> list:
        """The (row, col) cells of this template in bit order."""
        from repro.core.bitmask import coords_from_mask

        return coords_from_mask(self.mask, k)

    def render(self, k: int = DEFAULT_K) -> str:
        """ASCII-art rendering."""
        return render_mask(self.mask, k)


@dataclasses.dataclass(frozen=True)
class Portfolio:
    """An ordered template portfolio.

    Attributes
    ----------
    templates:
        Tuple of :class:`Template`; position in the tuple is the
        ``t_idx`` the position encoding stores.
    k:
        Local pattern size.
    name:
        Label used in reports (``"portfolio-0"`` .. ``"portfolio-9"`` for
        the Table V candidates, or ``"dynamic"`` for per-matrix builds).
    description:
        Table V style description of the composition.
    """

    templates: tuple
    k: int = DEFAULT_K
    name: str = "custom"
    description: str = ""

    def __post_init__(self):
        if not self.templates:
            raise PortfolioError("portfolio must contain templates")
        if len(self.templates) > MAX_TEMPLATES:
            raise PortfolioError(
                f"portfolio holds {len(self.templates)} templates; the "
                f"4-bit t_idx field addresses at most {MAX_TEMPLATES}"
            )
        grid = full_mask(self.k)
        union = 0
        for tmpl in self.templates:
            if popcount(tmpl.mask) != self.k:
                raise PortfolioError(
                    f"template {tmpl.name} has {popcount(tmpl.mask)} cells; "
                    f"templates must have fixed length k={self.k}"
                )
            if tmpl.mask & ~grid:
                raise PortfolioError(
                    f"template {tmpl.name} leaves the {self.k}x{self.k} grid"
                )
            union |= tmpl.mask
        if union != grid:
            raise PortfolioError(
                f"portfolio {self.name} does not cover the grid; patterns "
                "touching uncovered cells would be undecomposable"
            )
        masks = [t.mask for t in self.templates]
        if len(set(masks)) != len(masks):
            raise PortfolioError("portfolio contains duplicate templates")

    @property
    def masks(self) -> tuple:
        """Template masks in t_idx order."""
        return tuple(t.mask for t in self.templates)

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self):
        return iter(self.templates)

    def describe(self) -> str:
        """Multi-line report of the portfolio contents."""
        lines = [f"{self.name}: {self.description}".rstrip(": ")]
        for t_idx, tmpl in enumerate(self.templates):
            lines.append(f"  t_idx={t_idx:2d} {tmpl.kind:5s} {tmpl.name}")
        return "\n".join(lines)


def row_templates(k: int = DEFAULT_K) -> list:
    """The k row-wise templates."""
    return [Template(row_mask(r, k), f"RW{r}", "RW") for r in range(k)]


def col_templates(k: int = DEFAULT_K) -> list:
    """The k column-wise templates."""
    return [Template(col_mask(c, k), f"CW{c}", "CW") for c in range(k)]


def diag_templates(k: int = DEFAULT_K) -> list:
    """The k cyclic diagonal templates."""
    return [Template(diag_mask(s, k), f"DIAG{s}", "DIAG") for s in range(k)]


def antidiag_templates(k: int = DEFAULT_K) -> list:
    """The k cyclic anti-diagonal templates."""
    return [
        Template(antidiag_mask(s, k), f"ADIAG{s}", "ADIAG") for s in range(k)
    ]


def block_templates_aligned(k: int = DEFAULT_K) -> list:
    """2x2 blocks on the aligned (even) grid: 4 templates for k=4."""
    if k % 2:
        raise PortfolioError(f"aligned 2x2 blocks need even k, got {k}")
    out = []
    for r0 in range(0, k, 2):
        for c0 in range(0, k, 2):
            out.append(
                Template(block_mask(r0, c0, 2, 2, k), f"BW({r0},{c0})", "BW")
            )
    return out


def block_templates_shifted(k: int = DEFAULT_K) -> list:
    """2x2 blocks shifted by one cell (cross arrangement): 4 for k=4.

    Together with the aligned placements these form the "8 BW patterns"
    of portfolios 3 and 5-9 in Table V.
    """
    if k != 4:
        raise PortfolioError("shifted 2x2 blocks are defined for k=4")
    anchors = [(0, 1), (1, 0), (1, 2), (2, 1)]
    return [
        Template(block_mask(r0, c0, 2, 2, k), f"BW({r0},{c0})", "BW")
        for r0, c0 in anchors
    ]


def block_templates_torus(k: int = DEFAULT_K) -> list:
    """All k*k wrap-around 2x2 sampling-window placements.

    This is our reading of Table V's "16 BW patterns with different
    sampling window placement" for portfolio 2: a 2x2 window anchored at
    every cell of the grid, wrapping torus-style, gives exactly 16
    distinct 4-cell templates for k=4.
    """
    out = []
    for r0 in range(k):
        for c0 in range(k):
            out.append(
                Template(
                    block_mask(r0, c0, 2, 2, k, wrap=True),
                    f"BW({r0},{c0})w",
                    "BW",
                )
            )
    return out


def block_templates_8(k: int = DEFAULT_K) -> list:
    """The 8 BW templates (aligned + shifted) used by portfolios 3, 5-9."""
    return block_templates_aligned(k) + block_templates_shifted(k)


def build_portfolio(spec: str, k: int = DEFAULT_K, name: str = "custom",
                    description: str = "") -> Portfolio:
    """Build a portfolio from a ``+``-separated family spec.

    Recognized family tokens: ``rw``, ``cw``, ``diag``, ``adiag``,
    ``bw4`` (aligned), ``bw8`` (aligned + shifted), ``bw16`` (torus).
    Example: ``build_portfolio("rw+cw+bw4+diag")`` reproduces Table V's
    portfolio 0.
    """
    families = {
        "rw": row_templates,
        "cw": col_templates,
        "diag": diag_templates,
        "adiag": antidiag_templates,
        "bw4": block_templates_aligned,
        "bw8": block_templates_8,
        "bw16": block_templates_torus,
    }
    templates = []
    for token in spec.split("+"):
        token = token.strip().lower()
        if token not in families:
            raise PortfolioError(
                f"unknown family {token!r}; choose from {sorted(families)}"
            )
        templates.extend(families[token](k))
    return Portfolio(
        tuple(templates), k=k, name=name, description=description or spec
    )


#: Table V candidate portfolio specs, indexed by portfolio ID.
CANDIDATE_SPECS = (
    ("rw+cw+bw4+diag", "4 RW, 4 CW, 4 BW, 4 diagonal"),
    ("rw+cw+bw4+adiag", "4 RW, 4 CW, 4 BW, 4 anti-diagonal"),
    ("bw16", "16 BW with different sampling window placement"),
    ("rw+cw+bw8", "4 RW, 4 CW, 8 BW"),
    ("rw+cw+diag+adiag", "4 RW, 4 CW, 4 diagonal, 4 anti-diagonal"),
    ("bw8+diag+adiag", "8 BW, 4 diagonal, 4 anti-diagonal"),
    ("rw+bw8+diag", "4 RW, 8 BW, 4 diagonal"),
    ("cw+bw8+diag", "4 CW, 8 BW, 4 diagonal"),
    ("rw+bw8+adiag", "4 RW, 8 BW, 4 anti-diagonal"),
    ("cw+bw8+adiag", "4 CW, 8 BW, 4 anti-diagonal"),
)


def candidate_portfolios(k: int = DEFAULT_K) -> list:
    """The ten Table V candidate portfolios (k=4 only for the BW specs).

    For other pattern sizes (the Figure 9 sweep) the block families do not
    produce length-k templates, so the candidates degrade to the vector
    families that remain well defined: RW/CW/diag/adiag combinations.
    """
    if k == DEFAULT_K:
        return [
            build_portfolio(spec, k, name=f"portfolio-{i}", description=desc)
            for i, (spec, desc) in enumerate(CANDIDATE_SPECS)
        ]
    vector_specs = (
        ("rw+cw", "RW + CW"),
        ("rw+diag", "RW + diagonal"),
        ("cw+diag", "CW + diagonal"),
        ("rw+cw+diag+adiag", "RW + CW + diagonal + anti-diagonal"),
    )
    out = []
    for i, (spec, desc) in enumerate(vector_specs):
        try:
            out.append(
                build_portfolio(
                    spec, k, name=f"portfolio-{i}", description=desc
                )
            )
        except PortfolioError:
            continue
    return out


def candidate_portfolio(name: str, k: int = DEFAULT_K) -> Portfolio:
    """The Table V candidate portfolio with ``name`` (e.g. ``"portfolio-3"``).

    The resolver persisted tuning records use: a
    :class:`~repro.tune.TunedConfig` stores its structural choice by
    candidate name, and reapplying it must rebuild the *same* portfolio
    in any process.  Unknown names raise :class:`PortfolioError`.
    """
    for portfolio in candidate_portfolios(k):
        if portfolio.name == name:
            return portfolio
    known = ", ".join(p.name for p in candidate_portfolios(k))
    raise PortfolioError(
        f"unknown candidate portfolio {name!r} (known: {known})"
    )


def template_universe(k: int = DEFAULT_K):
    """Yield every possible fixed-length template as a raw mask.

    For k=4 this enumerates the C(16, 4) = 1820 possible template
    patterns the paper mentions in Section V-C.
    """
    for cells in itertools.combinations(range(k * k), k):
        mask = 0
        for bit in cells:
            mask |= 1 << bit
        yield mask


def universe_size(k: int = DEFAULT_K) -> int:
    """Number of possible fixed-length templates (1820 for k=4)."""
    count = 1
    n, r = k * k, k
    for i in range(r):
        count = count * (n - i) // (i + 1)
    return count
