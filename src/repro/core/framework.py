"""The end-to-end SPASM framework (paper Figure 6).

:class:`SpasmCompiler` is a thin facade over the pass-based pipeline in
:mod:`repro.pipeline`: ① local pattern analysis, ② template pattern
selection, ③ local pattern decomposition, ④ global composition analysis
and ⑤ workload schedule exploration run as explicit passes exchanging
typed artifacts, producing a :class:`SpasmProgram` ready for hardware
execution (step ⑥, :mod:`repro.hw`).

Every compile carries a structured
:class:`~repro.pipeline.trace.PipelineTrace` (per-stage wall time,
artifact sizes, cache hit/miss, bottleneck notes); the Table VIII style
:class:`PreprocessReport` is a view over that trace.  Passing a
``cache_dir`` turns on content-addressed caching of the analysis,
selection, decomposition and schedule stages, and ``jobs`` parallelizes
the Algorithm 4 sweep.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.format import SpasmMatrix
from repro.core.patterns import PatternHistogram
from repro.core.schedule import DEFAULT_TILE_SIZES, ScheduleResult
from repro.core.selection import SelectionResult
from repro.core.templates import (
    Portfolio,
    PortfolioError,
    candidate_portfolio,
    candidate_portfolios,
)
from repro.exec.plan import ExecutionPlan
from repro.hw.configs import HwConfig
from repro.matrix.coo import COOMatrix
from repro.pipeline.artifacts import ArtifactStore
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.passes import (
    AnalysisPass,
    AnalyzePass,
    CompilerPass,
    DecompositionPass,
    EncodePass,
    PlanPass,
    SchedulePass,
    SelectionPass,
    VerifyPass,
)
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.trace import PipelineTrace


@dataclasses.dataclass(frozen=True)
class PreprocessReport:
    """Per-stage preprocessing wall time, Table VIII style.

    Attributes map to the paper's circled stages (milliseconds):
    ``analysis_ms`` ①, ``selection_ms`` ②, ``decomposition_ms`` ③,
    ``schedule_ms`` ④⑤ (the paper reports the two jointly).

    This is a *view* over the pipeline trace — construct it with
    :meth:`from_trace`; the full per-stage records (cache outcomes,
    artifact sizes, notes) live on
    :attr:`SpasmProgram.trace`.
    """

    analysis_ms: float
    selection_ms: float
    decomposition_ms: float
    schedule_ms: float

    @classmethod
    def from_trace(cls, trace: PipelineTrace) -> "PreprocessReport":
        """Project a pipeline trace onto the four Table VIII columns."""
        return cls(
            analysis_ms=trace.stage_ms("analysis"),
            selection_ms=trace.stage_ms("selection"),
            decomposition_ms=trace.stage_ms("decomposition"),
            schedule_ms=trace.stage_ms("schedule"),
        )

    @property
    def total_ms(self) -> float:
        """Total preprocessing time."""
        return (
            self.analysis_ms
            + self.selection_ms
            + self.decomposition_ms
            + self.schedule_ms
        )

    def row(self, name: str) -> str:
        """One formatted Table VIII row."""
        return (
            f"{name:<14s} {self.analysis_ms:9.1f} {self.selection_ms:9.1f} "
            f"{self.decomposition_ms:9.1f} {self.schedule_ms:9.1f}"
        )


@dataclasses.dataclass(frozen=True)
class SpasmProgram:
    """A fully compiled SPASM workload.

    Attributes
    ----------
    spasm:
        The matrix encoded at the selected tile size and portfolio.
    hw_config:
        The selected hardware version.
    histogram:
        Step ① output.
    selection:
        Step ② output (``None`` when a fixed portfolio was forced).
    schedule:
        Step ⑤ output (``None`` when tile size and config were forced).
    report:
        Stage timing report (a view over :attr:`trace`).
    trace:
        The full per-stage pipeline trace of this compile.
    plan:
        The compiled :class:`~repro.exec.plan.ExecutionPlan`
        (``None`` unless the compiler was built with
        ``build_plan=True``; the matrix still compiles one lazily on
        first :meth:`~repro.core.format.SpasmMatrix.spmv`).
    """

    spasm: SpasmMatrix
    hw_config: HwConfig
    histogram: PatternHistogram
    selection: Optional[SelectionResult]
    schedule: Optional[ScheduleResult]
    report: PreprocessReport
    trace: Optional[PipelineTrace] = None
    plan: Optional[ExecutionPlan] = None

    @property
    def portfolio(self) -> Portfolio:
        """The portfolio the encoding used."""
        return self.spasm.portfolio

    @property
    def tile_size(self) -> int:
        """The selected tile size."""
        return self.spasm.tile_size

    def estimate(self):
        """Perf-model estimate for the compiled configuration.

        Returns the :class:`repro.hw.perf_model.PerfBreakdown`.
        """
        from repro.hw.perf_model import perf_breakdown

        return perf_breakdown(
            self.spasm.global_composition(), self.hw_config, self.tile_size
        )

    def estimated_gflops(self) -> float:
        """Paper throughput metric under the perf model."""
        cycles = self.estimate().total_cycles
        time_s = cycles / self.hw_config.frequency_hz
        flops = 2 * self.spasm.source_nnz + self.spasm.shape[0]
        return flops / time_s / 1e9 if time_s else 0.0


class SpasmCompiler:
    """Drives the full preprocessing workflow of Figure 6.

    Parameters
    ----------
    candidates:
        Candidate portfolios for step ② (default: the Table V ten).
    hw_configs:
        Hardware versions for step ⑤ (default: Table IV's three).
    tile_sizes:
        Tile size sweep for step ⑤.
    k:
        Local pattern size.
    selection_coverage:
        Step ② scores only the smallest top-n pattern subset reaching
        this frequency mass (the paper's preprocessing shortcut).
    perf_model:
        Override for the Algorithm 4 cost callable (testing hook).
    portfolio_strategy:
        ``"candidates"`` (paper Algorithm 3, default), ``"greedy"``
        (custom build from the template universe,
        :mod:`repro.core.dynamic`) or ``"combined"`` (best of both).
    hazard_aware:
        Reorder each tile's group stream to space out partial-sum
        reuse (:func:`repro.hw.hazards.hazard_aware_reorder`).
    jobs:
        Threads for the Algorithm 4 tile-size sweep (deterministic:
        any value selects the same point as the serial sweep).
    cache_dir:
        Directory for content-addressed caching of the analysis,
        selection, decomposition and schedule artifacts; recompiling an
        unchanged workload is then served from disk (``None`` disables).
    verify:
        Mount :mod:`repro.verify` as a final pipeline pass: each
        compile statically checks the encoded stream and raises
        :class:`~repro.core.format.FormatError` on any violation.
    build_plan:
        Append the :class:`~repro.pipeline.passes.PlanPass`: each
        compile also builds (and, with ``cache_dir``, persists) the
        numeric :class:`~repro.exec.plan.ExecutionPlan`, available as
        :attr:`SpasmProgram.plan`.
    analyze:
        Append the :class:`~repro.pipeline.passes.AnalyzePass`: each
        compile symbolically proves the six plan safety obligations
        (:mod:`repro.analyze`) and raises
        :class:`~repro.core.format.FormatError` on any refutation.
        Implies plan construction; with ``cache_dir`` the proof is
        content-addressed alongside the plan it certifies.
    backend:
        Kernel backend the compiled plan is intended to dispatch on
        (``None`` = auto-negotiation).  Threaded into
        :class:`~repro.pipeline.passes.PlanPass` (resolved at compile
        time so an incapable pinning fails early) and
        :class:`~repro.pipeline.passes.AnalyzePass` (the
        backend-capability obligation quantifies over it).
    """

    PORTFOLIO_STRATEGIES = ("candidates", "greedy", "combined")

    def __init__(self, candidates=None, hw_configs=None,
                 tile_sizes=DEFAULT_TILE_SIZES, k: int = 4,
                 selection_coverage: float = 0.95, perf_model=None,
                 portfolio_strategy: str = "candidates",
                 hazard_aware: bool = False, jobs: int = 1,
                 cache_dir=None, verify: bool = False,
                 build_plan: bool = False, analyze: bool = False,
                 backend: Optional[str] = None, tuned=None):
        self.k = k
        self.backend = backend
        # tuned: a repro.tune.TunedConfig to compile against (its
        # bitwise-safe structural knobs become fixed_portfolio/
        # fixed_tile_size, its backend the plan pinning), or True to
        # look the record up in cache_dir per matrix at compile time.
        self.tuned = tuned
        if tuned is True and cache_dir is None:
            raise ValueError(
                "tuned=True requires cache_dir (records are looked up "
                "in the artifact cache); pass a TunedConfig directly "
                "otherwise"
            )
        if tuned is not None and tuned is not True and backend is None:
            # Pin the plan to the tuned backend when this process can
            # actually dispatch it; a record tuned on another machine
            # (e.g. with numba) degrades to auto negotiation.
            from repro.exec.backends.registry import get_backend

            try:
                if get_backend(tuned.backend).is_available():
                    self.backend = tuned.backend
            except KeyError:
                pass
        if portfolio_strategy not in self.PORTFOLIO_STRATEGIES:
            raise ValueError(
                f"unknown portfolio strategy {portfolio_strategy!r}; "
                f"choose from {self.PORTFOLIO_STRATEGIES}"
            )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.portfolio_strategy = portfolio_strategy
        self.hazard_aware = hazard_aware
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.verify = verify
        self.analyze = analyze
        # Proofs are over the compiled plan: analyzing implies building.
        self.build_plan = build_plan or analyze
        self.candidates = (
            list(candidates) if candidates is not None
            else candidate_portfolios(k)
        )
        if hw_configs is None:
            from repro.hw.configs import DEFAULT_CONFIGS

            hw_configs = DEFAULT_CONFIGS
        self.hw_configs = list(hw_configs)
        self.tile_sizes = tuple(tile_sizes)
        self.selection_coverage = selection_coverage
        if perf_model is None:
            from repro.hw.perf_model import perf_model as default_model

            perf_model = default_model
        self.perf_model = perf_model

    def build_passes(self, fixed_portfolio: Optional[Portfolio] = None,
                     fixed_tile_size: Optional[int] = None,
                     fixed_hw_config: Optional[HwConfig] = None,
                     ) -> List[CompilerPass]:
        """The pass sequence one compile executes.

        Exposed so callers can inspect, extend or re-run the pipeline
        directly through :class:`~repro.pipeline.runner.PipelineRunner`.
        """
        passes: List[CompilerPass] = [
            AnalysisPass(self.k),
            SelectionPass(
                self.k,
                self.portfolio_strategy,
                self.candidates,
                self.selection_coverage,
                fixed_portfolio=fixed_portfolio,
            ),
            DecompositionPass(self.k),
            SchedulePass(
                self.k,
                self.tile_sizes,
                self.hw_configs,
                self.perf_model,
                jobs=self.jobs,
                fixed_tile_size=fixed_tile_size,
                fixed_hw_config=fixed_hw_config,
            ),
            # When a plan is requested, fuse its construction into the
            # encode (one pass over the encoder's intermediates instead
            # of a separate stream re-expansion); PlanPass then adopts
            # the attached plan and handles caching/tracing.
            EncodePass(hazard_aware=self.hazard_aware,
                       fuse_plan=self.build_plan),
        ]
        if self.verify:
            passes.append(VerifyPass())
        if self.build_plan:
            passes.append(PlanPass(backend=self.backend))
        if self.analyze:
            passes.append(AnalyzePass(backend=self.backend))
        return passes

    def _resolve_tuned(self, coo: COOMatrix,
                       cache: Optional[ArtifactCache]):
        """The tuning record this compile honors, if any.

        ``tuned=True`` looks the matrix up in the artifact cache by
        content digest (a missing record is simply an untuned
        compile); a :class:`~repro.tune.TunedConfig` instance is used
        as-is.
        """
        if self.tuned is None:
            return None
        if self.tuned is not True:
            return self.tuned
        if cache is None:
            return None
        from repro.pipeline.cache import matrix_digest
        from repro.tune.config import load_tuned

        return load_tuned(cache, matrix_digest(coo))

    def compile(self, coo: COOMatrix,
                fixed_portfolio: Optional[Portfolio] = None,
                fixed_tile_size: Optional[int] = None,
                fixed_hw_config: Optional[HwConfig] = None,
                ) -> SpasmProgram:
        """Run steps ①-⑤ and encode the matrix.

        The ``fixed_*`` arguments disable individual optimization stages
        for the Figure 14 ablation: a fixed portfolio skips step ②, and a
        fixed tile size plus hardware config skips step ⑤.
        """
        if not isinstance(coo, COOMatrix):
            raise TypeError("SpasmCompiler.compile expects a COOMatrix")

        store = ArtifactStore()
        store.put("coo", coo)
        cache = (
            ArtifactCache(self.cache_dir)
            if self.cache_dir is not None
            else None
        )
        tuned = self._resolve_tuned(coo, cache)
        if tuned is not None and tuned.structure_bitwise:
            # The persisted structural choice skips steps ② and ⑤ —
            # but only a bitwise-safe structure may steer the numeric
            # encoding; anything else keeps the default pipeline.
            if fixed_portfolio is None:
                try:
                    fixed_portfolio = candidate_portfolio(
                        tuned.portfolio, self.k
                    )
                    if fixed_tile_size is None:
                        fixed_tile_size = tuned.tile_size
                except PortfolioError:
                    pass  # foreign/greedy portfolio name: full pipeline
        runner = PipelineRunner(cache=cache)
        trace = runner.run(
            self.build_passes(
                fixed_portfolio=fixed_portfolio,
                fixed_tile_size=fixed_tile_size,
                fixed_hw_config=fixed_hw_config,
            ),
            store,
        )
        return SpasmProgram(
            spasm=store.require("spasm"),
            hw_config=store.require("hw_config"),
            histogram=store.require("histogram"),
            selection=store.get("selection"),
            schedule=store.get("schedule"),
            report=PreprocessReport.from_trace(trace),
            trace=trace,
            plan=store.get("plan"),
        )
