"""The end-to-end SPASM framework (paper Figure 6).

:class:`SpasmCompiler` chains the preprocessing pipeline —
① local pattern analysis, ② template pattern selection, ③ local pattern
decomposition, ④ global composition analysis and ⑤ workload schedule
exploration — into a :class:`SpasmProgram` ready for hardware execution
(step ⑥, :mod:`repro.hw`), and times every stage the way Table VIII
reports them.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.decompose import DecompositionTable
from repro.core.format import (
    SpasmMatrix,
    encode_spasm,
    groups_per_submatrix,
)
from repro.core.patterns import PatternHistogram, analyze_local_patterns
from repro.core.schedule import (
    DEFAULT_TILE_SIZES,
    ScheduleResult,
    explore_schedule,
)
from repro.core.selection import SelectionResult, select_portfolio
from repro.core.templates import Portfolio, candidate_portfolios
from repro.core.tiling import extract_global_composition
from repro.matrix.coo import COOMatrix


@dataclasses.dataclass(frozen=True)
class PreprocessReport:
    """Per-stage preprocessing wall time, Table VIII style.

    Attributes map to the paper's circled stages (milliseconds):
    ``analysis_ms`` ①, ``selection_ms`` ②, ``decomposition_ms`` ③,
    ``schedule_ms`` ④⑤ (the paper reports the two jointly).
    """

    analysis_ms: float
    selection_ms: float
    decomposition_ms: float
    schedule_ms: float

    @property
    def total_ms(self) -> float:
        """Total preprocessing time."""
        return (
            self.analysis_ms
            + self.selection_ms
            + self.decomposition_ms
            + self.schedule_ms
        )

    def row(self, name: str) -> str:
        """One formatted Table VIII row."""
        return (
            f"{name:<14s} {self.analysis_ms:9.1f} {self.selection_ms:9.1f} "
            f"{self.decomposition_ms:9.1f} {self.schedule_ms:9.1f}"
        )


@dataclasses.dataclass(frozen=True)
class SpasmProgram:
    """A fully compiled SPASM workload.

    Attributes
    ----------
    spasm:
        The matrix encoded at the selected tile size and portfolio.
    hw_config:
        The selected hardware version.
    histogram:
        Step ① output.
    selection:
        Step ② output (``None`` when a fixed portfolio was forced).
    schedule:
        Step ⑤ output (``None`` when tile size and config were forced).
    report:
        Stage timing report.
    """

    spasm: SpasmMatrix
    hw_config: object
    histogram: PatternHistogram
    selection: SelectionResult
    schedule: ScheduleResult
    report: PreprocessReport

    @property
    def portfolio(self) -> Portfolio:
        """The portfolio the encoding used."""
        return self.spasm.portfolio

    @property
    def tile_size(self) -> int:
        """The selected tile size."""
        return self.spasm.tile_size

    def estimate(self):
        """Perf-model estimate for the compiled configuration.

        Returns the :class:`repro.hw.perf_model.PerfBreakdown`.
        """
        from repro.hw.perf_model import perf_breakdown

        return perf_breakdown(
            self.spasm.global_composition(), self.hw_config, self.tile_size
        )

    def estimated_gflops(self) -> float:
        """Paper throughput metric under the perf model."""
        cycles = self.estimate().total_cycles
        time_s = cycles / self.hw_config.frequency_hz
        flops = 2 * self.spasm.source_nnz + self.spasm.shape[0]
        return flops / time_s / 1e9 if time_s else 0.0


class SpasmCompiler:
    """Drives the full preprocessing workflow of Figure 6.

    Parameters
    ----------
    candidates:
        Candidate portfolios for step ② (default: the Table V ten).
    hw_configs:
        Hardware versions for step ⑤ (default: Table IV's three).
    tile_sizes:
        Tile size sweep for step ⑤.
    k:
        Local pattern size.
    selection_coverage:
        Step ② scores only the smallest top-n pattern subset reaching
        this frequency mass (the paper's preprocessing shortcut).
    perf_model:
        Override for the Algorithm 4 cost callable (testing hook).
    portfolio_strategy:
        ``"candidates"`` (paper Algorithm 3, default), ``"greedy"``
        (custom build from the template universe,
        :mod:`repro.core.dynamic`) or ``"combined"`` (best of both).
    hazard_aware:
        Reorder each tile's group stream to space out partial-sum
        reuse (:func:`repro.hw.hazards.hazard_aware_reorder`).
    """

    PORTFOLIO_STRATEGIES = ("candidates", "greedy", "combined")

    def __init__(self, candidates=None, hw_configs=None,
                 tile_sizes=DEFAULT_TILE_SIZES, k: int = 4,
                 selection_coverage: float = 0.95, perf_model=None,
                 portfolio_strategy: str = "candidates",
                 hazard_aware: bool = False):
        self.k = k
        if portfolio_strategy not in self.PORTFOLIO_STRATEGIES:
            raise ValueError(
                f"unknown portfolio strategy {portfolio_strategy!r}; "
                f"choose from {self.PORTFOLIO_STRATEGIES}"
            )
        self.portfolio_strategy = portfolio_strategy
        self.hazard_aware = hazard_aware
        self.candidates = (
            list(candidates) if candidates is not None
            else candidate_portfolios(k)
        )
        if hw_configs is None:
            from repro.hw.configs import DEFAULT_CONFIGS

            hw_configs = DEFAULT_CONFIGS
        self.hw_configs = list(hw_configs)
        self.tile_sizes = tuple(tile_sizes)
        self.selection_coverage = selection_coverage
        if perf_model is None:
            from repro.hw.perf_model import perf_model as default_model

            perf_model = default_model
        self.perf_model = perf_model

    def compile(self, coo: COOMatrix, fixed_portfolio: Portfolio = None,
                fixed_tile_size: int = None,
                fixed_hw_config=None) -> SpasmProgram:
        """Run steps ①-⑤ and encode the matrix.

        The ``fixed_*`` arguments disable individual optimization stages
        for the Figure 14 ablation: a fixed portfolio skips step ②, and a
        fixed tile size plus hardware config skips step ⑤.
        """
        if not isinstance(coo, COOMatrix):
            raise TypeError("SpasmCompiler.compile expects a COOMatrix")

        # Step 1: local pattern analysis.
        t0 = time.perf_counter()
        histogram = analyze_local_patterns(coo, self.k)
        t1 = time.perf_counter()

        # Step 2: template pattern selection.
        selection = None
        if fixed_portfolio is not None:
            portfolio = fixed_portfolio
            table = DecompositionTable(portfolio)
        elif self.portfolio_strategy == "candidates":
            selection = select_portfolio(
                histogram,
                candidates=self.candidates,
                coverage=self.selection_coverage,
            )
            portfolio = selection.portfolio
            table = selection.table
        else:
            from repro.core.dynamic import (
                GreedyPortfolioBuilder,
                select_portfolio_dynamic,
            )

            if self.portfolio_strategy == "greedy":
                portfolio = GreedyPortfolioBuilder(k=self.k).build(
                    histogram
                ).portfolio
            else:  # combined
                portfolio = select_portfolio_dynamic(
                    histogram, candidates=self.candidates
                )
            table = DecompositionTable(portfolio)
        t2 = time.perf_counter()

        # Step 3: decompose all occurring patterns (tile-size independent).
        counts, sub_keys = groups_per_submatrix(coo, table, self.k)
        t3 = time.perf_counter()

        # Steps 4+5: global composition analysis x schedule exploration.
        schedule = None
        if fixed_tile_size is not None and fixed_hw_config is not None:
            tile_size = fixed_tile_size
            hw_config = fixed_hw_config
        else:
            def composition_factory(tile_size):
                return extract_global_composition(
                    coo, counts, sub_keys, tile_size, self.k
                )

            hw_sweep = (
                [fixed_hw_config]
                if fixed_hw_config is not None
                else self.hw_configs
            )
            tile_sweep = (
                (fixed_tile_size,)
                if fixed_tile_size is not None
                else self.tile_sizes
            )
            schedule = explore_schedule(
                composition_factory, hw_sweep, self.perf_model, tile_sweep
            )
            tile_size = schedule.best_tile_size
            hw_config = schedule.best_hw_config
        t4 = time.perf_counter()

        spasm = encode_spasm(coo, portfolio, tile_size, table)
        if self.hazard_aware:
            from repro.hw.hazards import hazard_aware_reorder

            spasm = hazard_aware_reorder(spasm)

        report = PreprocessReport(
            analysis_ms=(t1 - t0) * 1e3,
            selection_ms=(t2 - t1) * 1e3,
            decomposition_ms=(t3 - t2) * 1e3,
            schedule_ms=(t4 - t3) * 1e3,
        )
        return SpasmProgram(
            spasm=spasm,
            hw_config=hw_config,
            histogram=histogram,
            selection=selection,
            schedule=schedule,
            report=report,
        )
