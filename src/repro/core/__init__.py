"""SPASM core: pattern analysis, template portfolios, decomposition, the
SPASM sparse data format and the workload scheduler (paper Sections II-IV).
"""

from repro.core.bitmask import (
    popcount,
    popcount_array,
    mask_from_coords,
    coords_from_mask,
    render_mask,
    full_mask,
    row_mask,
    col_mask,
    diag_mask,
    antidiag_mask,
    block_mask,
)
from repro.core.patterns import PatternHistogram, analyze_local_patterns
from repro.core.templates import (
    Template,
    Portfolio,
    PortfolioError,
    build_portfolio,
    candidate_portfolio,
    candidate_portfolios,
    template_universe,
)
from repro.core.decompose import (
    DecompositionError,
    DecompositionTable,
    cached_table,
    find_best_decomp,
    greedy_decompose,
)
from repro.core.encoding import (
    PositionEncoding,
    pack_position,
    unpack_position,
    MAX_SUBMATRIX_INDEX,
    MAX_TILE_SIZE,
)
from repro.core.format import (
    FormatError,
    SpasmMatrix,
    SpasmTile,
    encode_spasm,
)
from repro.core.tiling import GlobalComposition, extract_global_composition
from repro.core.selection import SelectionResult, select_portfolio
from repro.core.dynamic import (
    GreedyBuildResult,
    GreedyPortfolioBuilder,
    select_portfolio_dynamic,
)
from repro.core.reorder import (
    ReorderResult,
    apply_permutation,
    best_reordering,
    sort_rows_by_block_signature,
    symmetric_degree_sort,
)
from repro.core.schedule import ScheduleResult, explore_schedule
from repro.core.framework import (
    PreprocessReport,
    SpasmCompiler,
    SpasmProgram,
)
from repro.core.serialize import load_spasm, save_spasm

__all__ = [
    "popcount",
    "popcount_array",
    "mask_from_coords",
    "coords_from_mask",
    "render_mask",
    "full_mask",
    "row_mask",
    "col_mask",
    "diag_mask",
    "antidiag_mask",
    "block_mask",
    "PatternHistogram",
    "analyze_local_patterns",
    "Template",
    "Portfolio",
    "PortfolioError",
    "build_portfolio",
    "candidate_portfolio",
    "candidate_portfolios",
    "template_universe",
    "DecompositionError",
    "DecompositionTable",
    "cached_table",
    "find_best_decomp",
    "greedy_decompose",
    "PositionEncoding",
    "pack_position",
    "unpack_position",
    "MAX_SUBMATRIX_INDEX",
    "MAX_TILE_SIZE",
    "FormatError",
    "SpasmMatrix",
    "SpasmTile",
    "encode_spasm",
    "GlobalComposition",
    "extract_global_composition",
    "SelectionResult",
    "select_portfolio",
    "GreedyBuildResult",
    "GreedyPortfolioBuilder",
    "select_portfolio_dynamic",
    "ReorderResult",
    "apply_permutation",
    "best_reordering",
    "sort_rows_by_block_signature",
    "symmetric_degree_sort",
    "ScheduleResult",
    "explore_schedule",
    "PreprocessReport",
    "SpasmCompiler",
    "SpasmProgram",
    "load_spasm",
    "save_spasm",
]
