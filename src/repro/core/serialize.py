"""Persistence for SPASM-encoded matrices.

The paper's amortization argument assumes the preprocessing output is
kept and reused across runs; this module makes that concrete by
round-tripping a :class:`SpasmMatrix` (tile directory, position words,
value payload and the portfolio that defines its t_idx space) through a
single ``.npz`` file.
"""

from __future__ import annotations

import numpy as np

from repro.core.format import SpasmMatrix
from repro.core.templates import Portfolio, Template

#: Format marker/version written into every file.
MAGIC = "spasm-npz-v1"


class SerializationError(ValueError):
    """Raised on malformed or incompatible files."""


def save_spasm(path, spasm: SpasmMatrix) -> None:
    """Write a SPASM-encoded matrix to ``path`` (.npz)."""
    portfolio = spasm.portfolio
    np.savez_compressed(
        path,
        magic=np.array(MAGIC),
        shape=np.array(spasm.shape, dtype=np.int64),
        k=np.array(spasm.k, dtype=np.int64),
        tile_size=np.array(spasm.tile_size, dtype=np.int64),
        source_nnz=np.array(spasm.source_nnz, dtype=np.int64),
        tile_rows=spasm.tile_rows,
        tile_cols=spasm.tile_cols,
        tile_ptr=spasm.tile_ptr,
        words=spasm.words,
        values=spasm.values,
        portfolio_masks=np.array(portfolio.masks, dtype=np.int64),
        portfolio_names=np.array(
            [t.name for t in portfolio.templates]
        ),
        portfolio_kinds=np.array(
            [t.kind for t in portfolio.templates]
        ),
        portfolio_name=np.array(portfolio.name),
        portfolio_description=np.array(portfolio.description),
    )


def load_spasm(path, verify: bool = False) -> SpasmMatrix:
    """Read a SPASM-encoded matrix written by :func:`save_spasm`.

    ``verify=True`` runs the static verifier on the loaded encoding
    (the integrity check for untrusted storage) and raises
    :class:`~repro.core.format.FormatError` listing every violation.
    """
    with np.load(path, allow_pickle=False) as data:
        try:
            magic = str(data["magic"])
        except KeyError:
            raise SerializationError(f"{path}: not a SPASM file") from None
        if magic != MAGIC:
            raise SerializationError(
                f"{path}: unsupported format marker {magic!r}"
            )
        k = int(data["k"])
        templates = tuple(
            Template(int(mask), str(name), str(kind))
            for mask, name, kind in zip(
                data["portfolio_masks"],
                data["portfolio_names"],
                data["portfolio_kinds"],
            )
        )
        portfolio = Portfolio(
            templates,
            k=k,
            name=str(data["portfolio_name"]),
            description=str(data["portfolio_description"]),
        )
        spasm = SpasmMatrix(
            shape=tuple(int(v) for v in data["shape"]),
            k=k,
            tile_size=int(data["tile_size"]),
            portfolio=portfolio,
            tile_rows=data["tile_rows"].copy(),
            tile_cols=data["tile_cols"].copy(),
            tile_ptr=data["tile_ptr"].copy(),
            words=data["words"].copy(),
            values=data["values"].copy(),
            source_nnz=int(data["source_nnz"]),
        )
    if verify:
        spasm.validate()
    return spasm
