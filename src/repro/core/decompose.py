"""Local pattern decomposition (paper Section IV-A, Listing 1).

Decomposing a local pattern means choosing a subset of the portfolio's
templates whose union covers every non-zero cell of the pattern; every
covered cell that is *not* a pattern cell — and every pattern cell covered
a second time — is a zero *padding*.  Walking Listing 1's accumulation,
the padding of a covering subset ``S`` is exactly

    padding(S) = sum(|t| for t in S) - |pattern|

because each pattern cell is charged only the first time a template covers
it.  Minimizing padding is therefore a minimum-weight set-cover with
weight ``|t|`` (a constant ``k`` for SPASM's fixed-length templates).

Two solvers are provided:

* :func:`find_best_decomp` — the paper's Listing 1 brute force over all
  ``2^n`` template subsets, kept as the executable reference.
* :class:`DecompositionTable` — an exact table: subsets are grouped by
  coverage union, then a superset-min (sum-over-subsets) DP propagates the
  cheapest covering subset to every one of the ``2^(k*k)`` patterns.
  After the one-off precomputation every decomposition is an O(1) lookup,
  which is what makes whole-matrix decomposition (step ③) tractable.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Tuple

import numpy as np

from repro.core.bitmask import DEFAULT_K, popcount, popcount_array
from repro.core.templates import Portfolio


class DecompositionError(ValueError):
    """Raised when a pattern cannot be covered by the given templates."""


@dataclasses.dataclass(frozen=True)
class Decomposition:
    """Result of decomposing one local pattern.

    Attributes
    ----------
    pattern:
        The decomposed local pattern mask.
    template_ids:
        Sorted tuple of portfolio ``t_idx`` values used.
    padding:
        Number of zero paddings introduced.
    """

    pattern: int
    template_ids: tuple
    padding: int

    @property
    def subset(self) -> int:
        """The template subset as a bitmask over t_idx."""
        mask = 0
        for t_idx in self.template_ids:
            mask |= 1 << t_idx
        return mask


def _subset_ids(subset: int) -> tuple:
    """Expand a subset bitmask into sorted template ids."""
    ids = []
    t_idx = 0
    while subset:
        if subset & 1:
            ids.append(t_idx)
        subset >>= 1
        t_idx += 1
    return tuple(ids)


def find_best_decomp(pattern: int, templates) -> tuple:
    """Paper Listing 1: brute-force search over all template subsets.

    Parameters
    ----------
    pattern:
        Local pattern bitmask.
    templates:
        Sequence of template masks (ints) or :class:`Template` objects.

    Returns
    -------
    (best_subset, best_num_paddings):
        ``best_subset`` is a bitmask over template indices.  Unlike the
        paper's listing (which would trivially return the empty subset),
        only subsets that fully cover the pattern are considered; this is
        the intended semantics — an uncovered non-zero cannot be computed.

    Raises
    ------
    DecompositionError:
        If no subset covers the pattern.
    """
    masks = [getattr(t, "mask", t) for t in templates]
    n = len(masks)
    best_num_paddings = None
    best_decomp = None
    for subset in range(1 << n):
        remain = pattern
        overlap = 0
        num_padding = 0
        for t_id in range(n):
            if subset & (1 << t_id):
                tmask = masks[t_id]
                padding = (~remain | overlap) & tmask
                overlap |= tmask
                remain &= ~tmask
                num_padding += popcount(padding)
        if remain:
            continue  # subset does not cover the pattern
        if best_num_paddings is None or num_padding < best_num_paddings:
            best_num_paddings = num_padding
            best_decomp = subset
    if best_decomp is None:
        raise DecompositionError(
            f"pattern {pattern:#x} is not coverable by the given templates"
        )
    return best_decomp, best_num_paddings


def greedy_decompose(pattern: int, templates) -> Decomposition:
    """Greedy set-cover heuristic: repeatedly take the template covering
    the most still-uncovered pattern cells.

    Fast and usually optimal for SPASM's structured portfolios, but not
    guaranteed; used for ablations against the exact solver.
    """
    masks = [getattr(t, "mask", t) for t in templates]
    remain = pattern
    chosen = []
    covered = 0
    while remain:
        best_gain, best_id = 0, None
        for t_id, tmask in enumerate(masks):
            gain = popcount(tmask & remain)
            if gain > best_gain:
                best_gain, best_id = gain, t_id
        if best_id is None:
            raise DecompositionError(
                f"pattern {pattern:#x} is not coverable by the given "
                "templates"
            )
        chosen.append(best_id)
        covered |= masks[best_id]
        remain &= ~masks[best_id]
    # Each selected template contributes |t| cells; pattern cells are paid
    # for exactly once, so padding = sum(|t|) - |pattern|.
    padding = sum(popcount(masks[i]) for i in chosen) - popcount(pattern)
    return Decomposition(pattern, tuple(sorted(chosen)), padding)


class DecompositionTable:
    """Exact decomposition of *every* k*k-bit pattern against a portfolio.

    The table is built once per portfolio in O(2^n + k*k * 2^(k*k))
    vectorized work (n = number of templates) and then answers
    ``decompose(pattern)`` in O(1).

    Parameters
    ----------
    portfolio:
        The template portfolio (or any sequence of template masks).
    k:
        Local pattern size; inferred from a :class:`Portfolio` argument.
    """

    def __init__(self, portfolio, k: int = None):
        if isinstance(portfolio, Portfolio):
            masks = list(portfolio.masks)
            k = portfolio.k
        else:
            masks = [getattr(t, "mask", t) for t in portfolio]
            if k is None:
                k = DEFAULT_K
        if not masks:
            raise DecompositionError("empty template set")
        self.k = k
        self.masks = tuple(int(m) for m in masks)
        self._build()

    def _build(self) -> None:
        n = len(self.masks)
        cell_bits = self.k * self.k
        nsubsets = 1 << n
        npatterns = 1 << cell_bits

        # Union and weight of every template subset, built incrementally:
        # subsets of templates[0:t+1] with bit t set are subsets of
        # templates[0:t] shifted up by 2^t.
        union = np.zeros(nsubsets, dtype=np.uint32)
        weight = np.zeros(nsubsets, dtype=np.int32)
        for t_id, tmask in enumerate(self.masks):
            m = 1 << t_id
            union[m : 2 * m] = union[:m] | np.uint32(tmask)
            weight[m : 2 * m] = weight[:m] + popcount(tmask)

        # Cheapest subset achieving each union value.
        big = np.iinfo(np.int32).max
        best_weight = np.full(npatterns, big, dtype=np.int32)
        best_subset = np.zeros(npatterns, dtype=np.int64)
        # Process subsets from heaviest to lightest so the last write per
        # union is the lightest subset (stable tie-break: lowest subset id).
        order = np.lexsort((np.arange(nsubsets), weight))[::-1]
        best_weight[union[order]] = weight[order]
        best_subset[union[order]] = order

        # Superset-min DP: propagate each union's cost to all its subsets
        # (a pattern p is covered by any subset whose union is a superset
        # of p).
        for bit in range(cell_bits):
            step = 1 << bit
            low = best_weight.reshape(-1, 2, step)
            low_s = best_subset.reshape(-1, 2, step)
            improve = low[:, 1, :] < low[:, 0, :]
            low[:, 0, :] = np.where(improve, low[:, 1, :], low[:, 0, :])
            low_s[:, 0, :] = np.where(improve, low_s[:, 1, :], low_s[:, 0, :])

        self._cover_weight = best_weight
        self._cover_subset = best_subset
        self._big = big

    @property
    def n_templates(self) -> int:
        """Number of templates in the portfolio."""
        return len(self.masks)

    def cover_count_array(self, sentinel: int = None) -> np.ndarray:
        """Minimum number of templates covering each possible pattern.

        Index the returned array by pattern mask; uncoverable patterns
        hold ``sentinel`` (default: a value larger than any real count).
        With SPASM's fixed-length templates the padding of pattern ``p``
        is ``k * count[p] - popcount(p)``, so this array is the whole
        cost structure — the greedy portfolio builder
        (:mod:`repro.core.dynamic`) leans on it.
        """
        if sentinel is None:
            sentinel = self.k * self.k + 1
        counts = np.where(
            self._cover_weight == self._big,
            sentinel,
            self._cover_weight // self.k,
        ).astype(np.int64)
        counts[0] = 0
        return counts

    def coverable(self, pattern: int) -> bool:
        """Whether the portfolio can decompose ``pattern``."""
        return bool(self._cover_weight[pattern] != self._big)

    def padding(self, pattern: int) -> int:
        """Minimal number of paddings for ``pattern``."""
        w = self._cover_weight[pattern]
        if w == self._big:
            raise DecompositionError(
                f"pattern {pattern:#x} is not coverable by this portfolio"
            )
        if pattern == 0:
            return 0
        return int(w) - popcount(pattern)

    def padding_array(self, patterns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`padding` (empty patterns cost 0)."""
        patterns = np.asarray(patterns, dtype=np.int64)
        weights = self._cover_weight[patterns]
        if np.any(weights == self._big):
            bad = patterns[weights == self._big][0]
            raise DecompositionError(
                f"pattern {bad:#x} is not coverable by this portfolio"
            )
        pads = weights.astype(np.int64) - popcount_array(patterns)
        return np.where(patterns == 0, 0, pads)

    def subset_array(self, patterns: np.ndarray) -> np.ndarray:
        """Vectorized optimal subset lookup (0 for the empty pattern)."""
        patterns = np.asarray(patterns, dtype=np.int64)
        weights = self._cover_weight[patterns]
        if np.any(weights == self._big):
            bad = patterns[weights == self._big][0]
            raise DecompositionError(
                f"pattern {bad:#x} is not coverable by this portfolio"
            )
        return np.where(patterns == 0, 0, self._cover_subset[patterns])

    def decompose(self, pattern: int) -> Decomposition:
        """Optimal decomposition of one pattern."""
        if pattern == 0:
            return Decomposition(0, (), 0)
        subset = int(self.subset_array(np.asarray([pattern]))[0])
        return Decomposition(
            pattern, _subset_ids(subset), self.padding(pattern)
        )

    def total_padding(self, histogram) -> int:
        """Frequency-weighted total padding over a pattern histogram.

        ``histogram`` is any mapping of pattern mask -> occurrence count
        (e.g. :class:`repro.core.patterns.PatternHistogram`).
        """
        items = getattr(histogram, "items", None)
        pairs = list(items()) if items else list(histogram)
        if not pairs:
            return 0
        patterns = np.fromiter(
            (p for p, __ in pairs), dtype=np.int64, count=len(pairs)
        )
        freqs = np.fromiter(
            (f for __, f in pairs), dtype=np.int64, count=len(pairs)
        )
        return int((self.padding_array(patterns) * freqs).sum())


# ----------------------------------------------------------------------
# process-wide table cache
# ----------------------------------------------------------------------

_TABLE_CACHE: Dict[Tuple[int, Tuple[int, ...]], DecompositionTable] = {}
_TABLE_CACHE_LOCK = threading.Lock()


def _table_key(portfolio, k=None) -> Tuple[int, Tuple[int, ...]]:
    """The (k, masks) digest a portfolio's table is keyed by."""
    if isinstance(portfolio, Portfolio):
        return (int(portfolio.k),
                tuple(int(m) for m in portfolio.masks))
    masks = tuple(int(getattr(t, "mask", t)) for t in portfolio)
    return (int(k) if k is not None else DEFAULT_K, masks)


def cached_table(portfolio, k: int = None) -> DecompositionTable:
    """A shared :class:`DecompositionTable` for this portfolio.

    Building a table costs O(k*k * 2^(k*k)) vectorized work — enough to
    dominate small-matrix compiles when rebuilt per call.  Tables are
    immutable after construction, so one instance per distinct
    ``(k, template masks)`` pair serves the whole process; repeated
    compiles, selection sweeps and ``encode_spasm(table=None)`` calls
    all hit the same entry.
    """
    key = _table_key(portfolio, k)
    with _TABLE_CACHE_LOCK:
        table = _TABLE_CACHE.get(key)
    if table is None:
        built = DecompositionTable(portfolio, k=k)
        with _TABLE_CACHE_LOCK:
            table = _TABLE_CACHE.setdefault(key, built)
    return table
