"""The 32-bit SPASM position encoding (paper Section III).

Each template group — ``pattern_size`` values sharing one template — is
described by one 32-bit word with five fields:

=========  ====  =====================================================
field      bits  meaning
=========  ====  =====================================================
``c_idx``  13    column index of the k-by-k submatrix within the tile
``r_idx``  13    row index of the k-by-k submatrix within the tile
``CE``     1     last group before the input (x) vector buffer switches
``RE``     1     last group before the partial-sum (y) buffer flushes
``t_idx``  4     template identifier within the portfolio
=========  ====  =====================================================

The 13-bit submatrix indices bound the tile size at ``2**13 * 4 = 32768``
(paper Section III).  ``CE``/``RE`` directly drive the PE's double
buffers, so the encoder sets them on the final group of each tile
according to which tile coordinate changes next.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: Field widths/positions (LSB first): c_idx | r_idx | CE | RE | t_idx.
C_IDX_BITS = 13
R_IDX_BITS = 13
C_IDX_SHIFT = 0
R_IDX_SHIFT = C_IDX_BITS
CE_SHIFT = C_IDX_BITS + R_IDX_BITS  # 26
RE_SHIFT = CE_SHIFT + 1  # 27
T_IDX_SHIFT = RE_SHIFT + 1  # 28
T_IDX_BITS = 4

#: Maximum submatrix index representable in 13 bits.
MAX_SUBMATRIX_INDEX = (1 << C_IDX_BITS) - 1
#: Maximum tile size in matrix elements (2^13 submatrices of 4 rows).
MAX_TILE_SIZE = (1 << C_IDX_BITS) * 4

_IDX_MASK = (1 << C_IDX_BITS) - 1
_T_MASK = (1 << T_IDX_BITS) - 1


class EncodingError(ValueError):
    """Raised when a field does not fit its bit budget."""


@dataclasses.dataclass(frozen=True)
class PositionEncoding:
    """Decoded view of one position encoding word."""

    c_idx: int
    r_idx: int
    ce: bool
    re: bool
    t_idx: int


def pack_position(c_idx: int, r_idx: int, ce: bool, re: bool,
                  t_idx: int) -> int:
    """Pack the five fields into one 32-bit word."""
    if not 0 <= c_idx <= MAX_SUBMATRIX_INDEX:
        raise EncodingError(f"c_idx {c_idx} exceeds {C_IDX_BITS} bits")
    if not 0 <= r_idx <= MAX_SUBMATRIX_INDEX:
        raise EncodingError(f"r_idx {r_idx} exceeds {R_IDX_BITS} bits")
    if not 0 <= t_idx <= _T_MASK:
        raise EncodingError(f"t_idx {t_idx} exceeds {T_IDX_BITS} bits")
    word = (
        (c_idx << C_IDX_SHIFT)
        | (r_idx << R_IDX_SHIFT)
        | (int(bool(ce)) << CE_SHIFT)
        | (int(bool(re)) << RE_SHIFT)
        | (t_idx << T_IDX_SHIFT)
    )
    return word


def unpack_position(word: int) -> PositionEncoding:
    """Decode one 32-bit position word."""
    word = int(word)
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"position word {word:#x} is not 32-bit")
    return PositionEncoding(
        c_idx=(word >> C_IDX_SHIFT) & _IDX_MASK,
        r_idx=(word >> R_IDX_SHIFT) & _IDX_MASK,
        ce=bool(word >> CE_SHIFT & 1),
        re=bool(word >> RE_SHIFT & 1),
        t_idx=(word >> T_IDX_SHIFT) & _T_MASK,
    )


def pack_position_array(c_idx: np.ndarray, r_idx: np.ndarray,
                        ce: np.ndarray, re: np.ndarray,
                        t_idx: np.ndarray) -> np.ndarray:
    """Vectorized :func:`pack_position` producing a ``uint32`` array."""
    c_idx = np.asarray(c_idx, dtype=np.int64)
    r_idx = np.asarray(r_idx, dtype=np.int64)
    t_idx = np.asarray(t_idx, dtype=np.int64)
    if c_idx.size:
        if c_idx.min() < 0 or c_idx.max() > MAX_SUBMATRIX_INDEX:
            raise EncodingError("c_idx out of 13-bit range")
        if r_idx.min() < 0 or r_idx.max() > MAX_SUBMATRIX_INDEX:
            raise EncodingError("r_idx out of 13-bit range")
        if t_idx.min() < 0 or t_idx.max() > _T_MASK:
            raise EncodingError("t_idx out of 4-bit range")
    words = (
        (c_idx << C_IDX_SHIFT)
        | (r_idx << R_IDX_SHIFT)
        | (np.asarray(ce, dtype=np.int64) << CE_SHIFT)
        | (np.asarray(re, dtype=np.int64) << RE_SHIFT)
        | (t_idx << T_IDX_SHIFT)
    )
    return words.astype(np.uint32)


def unpack_position_array(words: np.ndarray) -> dict:
    """Vectorized :func:`unpack_position`; returns a dict of field arrays."""
    words = np.asarray(words, dtype=np.uint32).astype(np.int64)
    return {
        "c_idx": (words >> C_IDX_SHIFT) & _IDX_MASK,
        "r_idx": (words >> R_IDX_SHIFT) & _IDX_MASK,
        "ce": (words >> CE_SHIFT & 1).astype(bool),
        "re": (words >> RE_SHIFT & 1).astype(bool),
        "t_idx": (words >> T_IDX_SHIFT) & _T_MASK,
    }
