"""Step ② — template pattern selection (paper Algorithm 3).

Given the local pattern histogram, every candidate portfolio is scored by
the frequency-weighted total padding of decomposing the top-n patterns
(the paper's preprocessing shortcut: the top-n patterns carry most of the
mass, so scoring them ranks portfolios almost as well as scoring all
patterns, far faster).  The portfolio with the least padding wins.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.decompose import (
    DecompositionError,
    DecompositionTable,
    cached_table,
)
from repro.core.patterns import PatternHistogram
from repro.core.templates import Portfolio, candidate_portfolios


@dataclasses.dataclass(frozen=True)
class SelectionResult:
    """Outcome of template pattern selection.

    Attributes
    ----------
    portfolio:
        The winning :class:`Portfolio`.
    table:
        The winner's pre-built :class:`DecompositionTable` (reused by the
        subsequent decomposition step).
    paddings:
        Candidate name -> frequency-weighted padding on the scored
        sub-histogram (``inf`` for candidates that could not cover some
        scored pattern).
    scored_patterns:
        Number of distinct patterns actually scored (the top-n).
    """

    portfolio: Portfolio
    table: DecompositionTable
    paddings: dict
    scored_patterns: int

    @property
    def ranking(self) -> list:
        """Candidate names sorted best (least padding) first."""
        return sorted(self.paddings, key=lambda name: self.paddings[name])


def select_portfolio(histogram: PatternHistogram, candidates=None,
                     top_n: int = None,
                     coverage: float = None) -> SelectionResult:
    """Paper Algorithm 3: pick the portfolio minimizing weighted padding.

    Parameters
    ----------
    histogram:
        Local pattern histogram from step ①.
    candidates:
        Iterable of :class:`Portfolio`; defaults to the ten Table V
        candidates for the histogram's pattern size.
    top_n:
        Score only the top-n most frequent patterns.
    coverage:
        Alternative to ``top_n``: score the smallest top-n subset whose
        frequency mass reaches this fraction (e.g. ``0.9``).  When neither
        is given, all observed patterns are scored.
    """
    if candidates is None:
        candidates = candidate_portfolios(histogram.k)
    candidates = list(candidates)
    if not candidates:
        raise ValueError("no candidate portfolios supplied")
    if top_n is not None and coverage is not None:
        raise ValueError("give top_n or coverage, not both")

    if coverage is not None:
        scored = histogram.top_fraction(coverage)
    elif top_n is not None:
        scored = histogram.top(top_n)
    else:
        scored = histogram

    paddings = {}
    best = None
    for portfolio in candidates:
        if portfolio.k != histogram.k:
            raise ValueError(
                f"portfolio {portfolio.name} has k={portfolio.k} but the "
                f"histogram was built with k={histogram.k}"
            )
        table = cached_table(portfolio)
        try:
            total = table.total_padding(scored)
        except DecompositionError:
            paddings[portfolio.name] = float("inf")
            continue
        paddings[portfolio.name] = total
        if best is None or total < best[0]:
            best = (total, portfolio, table)

    if best is None:
        raise DecompositionError(
            "no candidate portfolio covers the scored patterns"
        )
    __, portfolio, table = best
    return SelectionResult(
        portfolio=portfolio,
        table=table,
        paddings=paddings,
        scored_patterns=scored.n_distinct,
    )


def merge_histograms(histograms) -> PatternHistogram:
    """Frequency-sum several pattern histograms (same k).

    The merged histogram is what Algorithm 3 scores when a portfolio
    must serve a *set* of expected input matrices — the paper's
    deployment story: customize once for the expected workload mix,
    then run anything (with reduced performance on mismatches).
    """
    import numpy as np

    histograms = list(histograms)
    if not histograms:
        raise ValueError("no histograms to merge")
    k = histograms[0].k
    if any(h.k != k for h in histograms):
        raise ValueError("histograms disagree on the pattern size k")
    totals = {}
    for histogram in histograms:
        for pattern, freq in histogram.items():
            totals[pattern] = totals.get(pattern, 0) + freq
    patterns = np.array(sorted(totals), dtype=np.int64)
    freqs = np.array([totals[p] for p in patterns], dtype=np.int64)
    order = np.lexsort((patterns, -freqs))
    return PatternHistogram(k, patterns[order], freqs[order])


def select_portfolio_for_set(histograms, candidates=None,
                             top_n: int = None,
                             coverage: float = None) -> SelectionResult:
    """Algorithm 3 over a workload *set*: one portfolio for many
    matrices, scored on their merged pattern histogram."""
    return select_portfolio(
        merge_histograms(histograms),
        candidates=candidates,
        top_n=top_n,
        coverage=coverage,
    )


def padding_rate(histogram: PatternHistogram,
                 portfolio: Portfolio) -> float:
    """Padding rate of decomposing an entire histogram with a portfolio.

    Defined as padding / stored slots (Section V-B's ``padding_rate``):
    ``stored = nnz + padding``.
    """
    table = cached_table(portfolio)
    total_padding = table.total_padding(histogram)
    freqs = histogram.frequencies
    nnz = int((histogram.nnz_per_pattern() * freqs).sum())
    stored = nnz + total_padding
    return total_padding / stored if stored else 0.0


def storage_bytes_estimate(histogram: PatternHistogram,
                           portfolio: Portfolio,
                           value_bytes: int = 4) -> int:
    """SPASM storage cost implied by a histogram + portfolio choice.

    Every group stores ``k`` values and one position word:
    ``groups * (k + 1) * 4`` bytes, with
    ``groups = (nnz + padding) / k``.
    """
    table = cached_table(portfolio)
    total_padding = table.total_padding(histogram)
    freqs = histogram.frequencies
    nnz = int((histogram.nnz_per_pattern() * freqs).sum())
    slots = nnz + total_padding
    assert slots % histogram.k == 0, "slots must be whole groups"
    groups = slots // histogram.k
    return groups * (histogram.k + 1) * value_bytes
