"""Step ⑤ — workload schedule exploration (paper Algorithm 4).

SPASM is synthesized in several hardware versions (bitstreams) that trade
PE-group count against x-vector bandwidth, and the format supports a
range of tile sizes.  Algorithm 4 jointly sweeps both: each tile size
yields a new global composition (step ④ is re-entered), every hardware
configuration is scored with the analytic performance model, and the
cheapest (fewest estimated cycles) pair wins.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.tiling import GlobalComposition, TilingError

#: Paper-representative tile size sweep (powers of two within the 13-bit
#: submatrix index budget).
DEFAULT_TILE_SIZES = (256, 512, 1024, 2048, 4096, 8192)


@dataclasses.dataclass(frozen=True)
class SchedulePoint:
    """One evaluated (tile size, hardware configuration) pair.

    ``composition`` is ``None`` when the point was restored from the
    artifact cache (the encoder never consumes it).
    """

    tile_size: int
    hw_config: object
    cycles: float
    composition: Optional[GlobalComposition]

    @property
    def label(self) -> str:
        """Human-readable point label."""
        name = getattr(self.hw_config, "name", str(self.hw_config))
        return f"{name} @ tile={self.tile_size}"


@dataclasses.dataclass(frozen=True)
class ScheduleResult:
    """Outcome of the joint exploration.

    Attributes
    ----------
    best:
        The winning :class:`SchedulePoint`.
    points:
        Every evaluated point (for ablation reporting).
    """

    best: SchedulePoint
    points: tuple

    @property
    def best_tile_size(self) -> int:
        """Tile size of the winning point."""
        return self.best.tile_size

    @property
    def best_hw_config(self):
        """Hardware configuration of the winning point."""
        return self.best.hw_config

    @property
    def best_cycles(self) -> float:
        """Estimated cycles of the winning point."""
        return self.best.cycles

    def improvement_over(self, tile_size: int, hw_config) -> float:
        """Speedup of the best point over a fixed baseline point.

        Used by the Figure 14 ablation (baseline: SPASM_4_1, tile 1024).
        """
        for point in self.points:
            if point.tile_size == tile_size and point.hw_config == hw_config:
                return point.cycles / self.best.cycles
        raise KeyError(
            f"baseline point (tile={tile_size}, {hw_config}) was not "
            "part of the exploration"
        )


def _evaluate_tile(composition_factory, tile_size, hw_configs,
                   perf_model) -> list:
    """Evaluate one tile size against every hardware configuration.

    Returns the list of :class:`SchedulePoint` in ``hw_configs`` order,
    or an empty list when the factory rejects the tile size.
    """
    try:
        composition = composition_factory(tile_size)
    except TilingError:
        return []
    return [
        SchedulePoint(
            tile_size=tile_size,
            hw_config=hw_config,
            cycles=float(perf_model(composition, hw_config, tile_size)),
            composition=composition,
        )
        for hw_config in hw_configs
    ]


def explore_schedule(composition_factory, hw_configs, perf_model,
                     tile_sizes=DEFAULT_TILE_SIZES,
                     jobs: int = 1) -> ScheduleResult:
    """Paper Algorithm 4: joint tile-size x hardware-config sweep.

    Parameters
    ----------
    composition_factory:
        Callable ``tile_size -> GlobalComposition`` (step ④ re-entry;
        see :func:`repro.core.format.groups_per_submatrix` +
        :func:`repro.core.tiling.extract_global_composition` for the
        fast path).  Tile sizes it rejects with
        :class:`~repro.core.tiling.TilingError` are skipped.
    hw_configs:
        Iterable of hardware configurations (opaque to this module;
        the perf model interprets them).
    perf_model:
        Callable ``(composition, hw_config, tile_size) -> cycles``.
    tile_sizes:
        Tile sizes to sweep.
    jobs:
        ``jobs > 1`` evaluates tile sizes concurrently on the process's
        shared executor (:func:`repro.exec.plan._pool` — the same
        bounded pool the plan shards run on; the composition rebuild
        dominates and releases the GIL inside numpy).  The reduction is
        deterministic: points are gathered in sweep order before the
        strict-< minimum is taken, so any ``jobs`` value selects
        exactly the point the serial sweep does.
    """
    hw_configs = list(hw_configs)
    if not hw_configs:
        raise ValueError("no hardware configurations supplied")
    tile_sizes = tuple(tile_sizes)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    if jobs == 1 or len(tile_sizes) <= 1:
        per_tile = [
            _evaluate_tile(
                composition_factory, tile_size, hw_configs, perf_model
            )
            for tile_size in tile_sizes
        ]
    else:
        # The shared executor (one pool per process, same threads the
        # plan shards run on); results are collected in sweep order so
        # the reduction below stays deterministic for every ``jobs``.
        from repro.exec.plan import _pool

        futures = [
            _pool().submit(
                _evaluate_tile, composition_factory, tile_size,
                hw_configs, perf_model,
            )
            for tile_size in tile_sizes
        ]
        per_tile = [future.result() for future in futures]

    points = [point for tile_points in per_tile for point in tile_points]
    best = None
    for point in points:
        if best is None or point.cycles < best.cycles:
            best = point
    if best is None:
        raise ValueError(
            "no (tile size, hw config) point could be evaluated; "
            "check the tile size sweep against the matrix shape"
        )
    return ScheduleResult(best=best, points=tuple(points))
