"""Step ④ — global composition analysis (paper Sections III and IV-C).

The second tiling level groups k-by-k submatrices into square tiles of
``tile_size`` matrix elements.  The *global composition* is the COO list
of non-empty tiles together with their workload (template groups and
non-zeros), which is what the workload scheduler and the performance
model consume: the distribution of groups across tiles determines PE load
balance.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.bitmask import DEFAULT_K
from repro.core.encoding import MAX_TILE_SIZE
from repro.matrix.coo import COOMatrix


class TilingError(ValueError):
    """Raised for invalid tile size choices."""


def validate_tile_size(tile_size: int, k: int = DEFAULT_K) -> int:
    """Check a tile size against the format constraints."""
    tile_size = int(tile_size)
    if tile_size < k or tile_size % k:
        raise TilingError(
            f"tile size must be a positive multiple of k={k}, "
            f"got {tile_size}"
        )
    if tile_size > MAX_TILE_SIZE:
        raise TilingError(
            f"tile size {tile_size} exceeds the 13-bit submatrix index "
            f"budget (max {MAX_TILE_SIZE})"
        )
    return tile_size


@dataclasses.dataclass(frozen=True)
class GlobalComposition:
    """COO-of-tiles view of a matrix at a given tile size.

    Tiles are listed in stream (row-major) order: ``tile_rows`` changes
    slowest, matching the accelerator's partial-sum-friendly traversal.

    Attributes
    ----------
    shape:
        Logical matrix shape.
    k:
        Local pattern size.
    tile_size:
        Tile edge length in matrix elements.
    tile_rows, tile_cols:
        Coordinates of each non-empty tile.
    groups_per_tile:
        Number of template groups (VALU operations) in each tile.
    nnz_per_tile:
        Number of matrix non-zeros in each tile.
    """

    shape: tuple
    k: int
    tile_size: int
    tile_rows: np.ndarray
    tile_cols: np.ndarray
    groups_per_tile: np.ndarray
    nnz_per_tile: np.ndarray

    @property
    def n_tiles(self) -> int:
        """Number of non-empty tiles."""
        return int(self.tile_rows.size)

    @property
    def n_tile_rows(self) -> int:
        """Number of tile rows spanned by the matrix."""
        return -(-self.shape[0] // self.tile_size)

    @property
    def n_tile_cols(self) -> int:
        """Number of tile columns spanned by the matrix."""
        return -(-self.shape[1] // self.tile_size)

    @property
    def total_groups(self) -> int:
        """Total template groups across all tiles."""
        return int(self.groups_per_tile.sum())

    @property
    def total_nnz(self) -> int:
        """Total non-zeros across all tiles."""
        return int(self.nnz_per_tile.sum())

    def occupancy(self) -> float:
        """Fraction of tiles of the full grid that are non-empty."""
        grid = self.n_tile_rows * self.n_tile_cols
        return self.n_tiles / grid if grid else 0.0

    def tiles_in_row(self) -> np.ndarray:
        """Number of non-empty tiles per tile row (length n_tile_rows)."""
        return np.bincount(self.tile_rows, minlength=self.n_tile_rows)

    def groups_in_row(self) -> np.ndarray:
        """Template groups per tile row — the per-row workload profile."""
        return np.bincount(
            self.tile_rows,
            weights=self.groups_per_tile,
            minlength=self.n_tile_rows,
        ).astype(np.int64)

    def imbalance(self, n_parallel: int) -> float:
        """Load imbalance of a round-robin tile-row partition.

        Ratio of the most loaded of ``n_parallel`` workers to the mean
        load (1.0 = perfectly balanced); the metric the workload schedule
        exploration tries to minimize.
        """
        loads = partition_loads(self.groups_in_row(), n_parallel)
        mean = loads.mean()
        return float(loads.max() / mean) if mean else 1.0


def partition_loads(row_loads: np.ndarray, n_parallel: int) -> np.ndarray:
    """Total load per worker of a round-robin tile-row assignment."""
    if n_parallel <= 0:
        raise ValueError("n_parallel must be positive")
    loads = np.zeros(n_parallel, dtype=np.int64)
    idx = np.arange(row_loads.size) % n_parallel
    np.add.at(loads, idx, row_loads.astype(np.int64))
    return loads


def extract_global_composition(coo: COOMatrix, groups_per_submatrix,
                               sub_keys, tile_size: int,
                               k: int = DEFAULT_K) -> GlobalComposition:
    """Aggregate submatrix-level workload into tiles.

    Decomposition (step ③) is independent of the tile size — a submatrix's
    template count never changes — so Algorithm 4's inner loop only needs
    this cheap re-aggregation when it revisits step ④ for a new tile size.

    Parameters
    ----------
    coo:
        The source matrix (for nnz accounting).
    groups_per_submatrix:
        Template-group count of each non-empty submatrix.
    sub_keys:
        Row-major submatrix keys parallel to ``groups_per_submatrix``
        (from :func:`repro.core.patterns.submatrix_masks`).
    tile_size:
        Tile edge length in elements.
    k:
        Local pattern size.
    """
    tile_size = validate_tile_size(tile_size, k)
    spt = tile_size // k  # submatrices per tile edge
    nsubcols = -(-coo.shape[1] // k)
    n_tile_cols = -(-coo.shape[1] // tile_size)

    sub_keys = np.asarray(sub_keys, dtype=np.int64)
    groups = np.asarray(groups_per_submatrix, dtype=np.int64)
    sub_r = sub_keys // nsubcols
    sub_c = sub_keys % nsubcols
    tile_keys = (sub_r // spt) * n_tile_cols + (sub_c // spt)

    order = np.argsort(tile_keys, kind="stable")
    tile_keys_sorted = tile_keys[order]
    unique_tiles, starts = np.unique(tile_keys_sorted, return_index=True)
    groups_per_tile = np.add.reduceat(groups[order], starts)

    # nnz per tile straight from the raw coordinates.
    nnz_tile_keys = (
        (coo.rows // tile_size) * n_tile_cols + coo.cols // tile_size
    )
    nnz_counts = np.bincount(
        np.searchsorted(unique_tiles, nnz_tile_keys),
        minlength=unique_tiles.size,
    )

    return GlobalComposition(
        shape=coo.shape,
        k=k,
        tile_size=tile_size,
        tile_rows=(unique_tiles // n_tile_cols).astype(np.int64),
        tile_cols=(unique_tiles % n_tile_cols).astype(np.int64),
        groups_per_tile=groups_per_tile.astype(np.int64),
        nnz_per_tile=nnz_counts.astype(np.int64),
    )
