"""Matrix reordering preprocessing (extension).

The paper's related work points at reordering studies (Trotter et al.,
SC'23) as a complementary lever: permuting rows/columns so that
non-zeros cluster into denser k-by-k submatrices reduces both the
number of template groups and the padding.  This module provides the
two cheap orderings that matter for SPASM:

* :func:`sort_rows_by_block_signature` — rows sharing the same set of
  occupied column blocks become adjacent, merging their partial local
  patterns into fuller ones (helps staircase/LP and scattered FEM
  matrices);
* :func:`symmetric_degree_sort` — square matrices reordered by
  descending degree on both axes, packing hub-hub edges of scale-free
  graphs into dense corner blocks.

A :class:`ReorderResult` carries the permutation and exposes
``spmv(x)`` in the *original* index space, so reordering stays an
internal optimization invisible to callers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.bitmask import DEFAULT_K
from repro.matrix.coo import COOMatrix


@dataclasses.dataclass(frozen=True)
class ReorderResult:
    """A reordered matrix plus the bookkeeping to undo it.

    Attributes
    ----------
    matrix:
        The permuted matrix (rows and possibly columns).
    row_perm:
        ``row_perm[new] = old``: original row at each new position.
    col_perm:
        Same for columns (identity for row-only orderings).
    """

    matrix: COOMatrix
    row_perm: np.ndarray
    col_perm: np.ndarray

    @property
    def row_inverse(self) -> np.ndarray:
        """``row_inverse[old] = new``."""
        inv = np.empty_like(self.row_perm)
        inv[self.row_perm] = np.arange(self.row_perm.size)
        return inv

    @property
    def col_inverse(self) -> np.ndarray:
        """``col_inverse[old] = new``."""
        inv = np.empty_like(self.col_perm)
        inv[self.col_perm] = np.arange(self.col_perm.size)
        return inv

    def spmv(self, x: np.ndarray, spmv_fn=None) -> np.ndarray:
        """``A @ x`` in the original index space.

        ``spmv_fn`` defaults to the permuted matrix's own reference
        SpMV but accepts any drop-in (e.g. a compiled
        ``SpasmMatrix.spmv``), which is how reordering composes with
        the SPASM pipeline.
        """
        x = np.asarray(x, dtype=np.float64)
        if spmv_fn is None:
            spmv_fn = self.matrix.spmv
        y_permuted = spmv_fn(x[self.col_perm])
        y = np.empty_like(y_permuted)
        y[self.row_perm] = y_permuted
        return y


def apply_permutation(coo: COOMatrix, row_perm, col_perm) -> ReorderResult:
    """Permute a matrix by explicit row/column orders.

    ``row_perm[new] = old``; both arrays must be permutations of their
    axis ranges.
    """
    row_perm = np.asarray(row_perm, dtype=np.int64)
    col_perm = np.asarray(col_perm, dtype=np.int64)
    if sorted(row_perm.tolist()) != list(range(coo.shape[0])):
        raise ValueError("row_perm is not a permutation of the rows")
    if sorted(col_perm.tolist()) != list(range(coo.shape[1])):
        raise ValueError("col_perm is not a permutation of the columns")
    row_inv = np.empty_like(row_perm)
    row_inv[row_perm] = np.arange(row_perm.size)
    col_inv = np.empty_like(col_perm)
    col_inv[col_perm] = np.arange(col_perm.size)
    permuted = COOMatrix(
        row_inv[coo.rows], col_inv[coo.cols], coo.vals, coo.shape
    )
    return ReorderResult(permuted, row_perm, col_perm)


def sort_rows_by_block_signature(coo: COOMatrix,
                                 k: int = DEFAULT_K) -> ReorderResult:
    """Group rows whose non-zeros occupy the same column blocks.

    Rows are sorted by (first occupied column block, occupied-block
    fingerprint, original index): rows touching the same blocks land in
    the same k-row band, so their entries fuse into shared k-by-k
    submatrices instead of each paying its own template groups.
    """
    nrows = coo.shape[0]
    first_block = np.full(nrows, np.iinfo(np.int64).max, dtype=np.int64)
    blocks = coo.cols // k
    np.minimum.at(first_block, coo.rows, blocks)

    # Order-insensitive fingerprint of each row's occupied block set.
    fingerprint = np.zeros(nrows, dtype=np.uint64)
    mixed = (blocks.astype(np.uint64) + np.uint64(0x9E3779B9)) * np.uint64(
        0x85EBCA6B
    )
    mixed ^= mixed >> np.uint64(13)
    np.add.at(fingerprint, coo.rows, mixed)

    order = np.lexsort(
        (np.arange(nrows), fingerprint, first_block)
    ).astype(np.int64)
    return apply_permutation(coo, order, np.arange(coo.shape[1]))


def symmetric_degree_sort(coo: COOMatrix) -> ReorderResult:
    """Reorder a square matrix by descending degree on both axes.

    Scale-free graphs concentrate edges among hubs; placing hubs first
    turns the hub-hub core into dense leading blocks — the structure
    SPASM's block templates want.
    """
    if coo.shape[0] != coo.shape[1]:
        raise ValueError("symmetric reordering needs a square matrix")
    degree = np.bincount(coo.rows, minlength=coo.shape[0]) + np.bincount(
        coo.cols, minlength=coo.shape[1]
    )
    order = np.lexsort(
        (np.arange(coo.shape[0]), -degree)
    ).astype(np.int64)
    return apply_permutation(coo, order, order)


def identity_reorder(coo: COOMatrix) -> ReorderResult:
    """The no-op ordering (baseline for :func:`best_reordering`)."""
    return ReorderResult(
        coo,
        np.arange(coo.shape[0], dtype=np.int64),
        np.arange(coo.shape[1], dtype=np.int64),
    )


def best_reordering(coo: COOMatrix, k: int = DEFAULT_K) -> ReorderResult:
    """Try the candidate orderings and keep the cheapest encoding.

    Reordering *hurts* matrices that already have structure (it breaks
    their bands and blocks), so the identity ordering is always in the
    race — the result is never worse than not reordering, mirroring how
    the schedule exploration always contains its baseline point.
    """
    from repro.analysis.storage_compare import spasm_storage_bytes

    candidates = [identity_reorder(coo), sort_rows_by_block_signature(
        coo, k
    )]
    if coo.shape[0] == coo.shape[1]:
        candidates.append(symmetric_degree_sort(coo))
    return min(
        candidates,
        key=lambda result: spasm_storage_bytes(result.matrix),
    )


def reorder_gain(coo: COOMatrix, result: ReorderResult,
                 k: int = DEFAULT_K) -> dict:
    """Storage effect of a reordering under dynamic portfolio selection.

    Returns the SPASM bytes/nnz before and after, and the ratio
    (>1 means the reordering helped).
    """
    from repro.analysis.storage_compare import spasm_storage_bytes

    before = spasm_storage_bytes(coo) / max(coo.nnz, 1)
    after = spasm_storage_bytes(result.matrix) / max(coo.nnz, 1)
    return {
        "before_bytes_per_nnz": before,
        "after_bytes_per_nnz": after,
        "gain": before / after if after else 1.0,
    }
