"""Step ① — local pattern analysis (paper Algorithm 2).

The matrix is tiled into k-by-k submatrices; each non-empty submatrix
contributes one k*k-bit occupancy bitmask, and the analysis produces the
(bitmask -> frequency) histogram that drives template selection (Fig. 2
shows its top-8 entries, Fig. 3 the CDF of its top-n mass).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.bitmask import DEFAULT_K, popcount_array, render_mask
from repro.matrix.coo import COOMatrix


@dataclasses.dataclass(frozen=True)
class PatternHistogram:
    """Histogram of local pattern occurrences.

    Attributes
    ----------
    k:
        Local pattern size.
    patterns:
        Distinct pattern masks, sorted by descending frequency (ties by
        ascending mask for determinism).
    frequencies:
        Occurrence count per pattern, parallel to ``patterns``.
    """

    k: int
    patterns: np.ndarray
    frequencies: np.ndarray

    @property
    def n_distinct(self) -> int:
        """Number of distinct non-empty patterns observed."""
        return int(self.patterns.size)

    @property
    def total(self) -> int:
        """Total number of non-empty submatrices."""
        return int(self.frequencies.sum())

    def items(self):
        """Iterate (pattern, frequency) pairs, most frequent first."""
        return zip(
            (int(p) for p in self.patterns),
            (int(f) for f in self.frequencies),
        )

    def top(self, n: int) -> "PatternHistogram":
        """Sub-histogram of the top-n most frequent patterns."""
        n = min(n, self.n_distinct)
        return PatternHistogram(
            self.k, self.patterns[:n].copy(), self.frequencies[:n].copy()
        )

    def top_fraction(self, coverage: float) -> "PatternHistogram":
        """Smallest top-n sub-histogram whose mass reaches ``coverage``.

        This is the paper's "top-n patterns count up a certain portion of
        the total occurring patterns" preprocessing shortcut.
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        if self.n_distinct == 0:
            return self
        cum = np.cumsum(self.frequencies) / self.total
        n = int(np.searchsorted(cum, coverage) + 1)
        return self.top(n)

    def cdf(self) -> np.ndarray:
        """Cumulative frequency share of the top-n patterns (Figure 3)."""
        if self.total == 0:
            return np.zeros(0)
        return np.cumsum(self.frequencies) / self.total

    def coverage_of_top(self, n: int) -> float:
        """Frequency share captured by the top-n patterns."""
        if self.total == 0:
            return 0.0
        n = min(n, self.n_distinct)
        return float(self.frequencies[:n].sum() / self.total)

    def nnz_per_pattern(self) -> np.ndarray:
        """Popcount of each distinct pattern."""
        return popcount_array(self.patterns)

    def describe_top(self, n: int = 8) -> str:
        """Figure 2 style report: top-n patterns with ASCII art."""
        lines = []
        for rank, (pattern, freq) in enumerate(self.top(n).items()):
            share = freq / self.total * 100.0
            lines.append(
                f"#{rank + 1}: mask={pattern:#06x} freq={freq} "
                f"({share:.2f}%)"
            )
            lines.append(render_mask(pattern, self.k))
        return "\n".join(lines)


def analyze_local_patterns(matrix, k: int = DEFAULT_K) -> PatternHistogram:
    """Paper Algorithm 2: build the local pattern histogram of a matrix.

    Parameters
    ----------
    matrix:
        A :class:`COOMatrix` (other formats: convert first).
    k:
        Submatrix size (paper default 4).

    Returns
    -------
    PatternHistogram
        Histogram over the non-empty k-by-k submatrices.
    """
    if not isinstance(matrix, COOMatrix):
        raise TypeError("analyze_local_patterns expects a COOMatrix")
    if k <= 0:
        raise ValueError(f"pattern size must be positive, got {k}")
    if k * k > 32:
        raise ValueError(f"pattern size {k} exceeds the 32-bit mask budget")
    masks, __ = submatrix_masks(matrix, k)
    return histogram_from_masks(masks, k)


def histogram_from_masks(masks: np.ndarray, k: int) -> PatternHistogram:
    """Build the pattern histogram from precomputed submatrix masks.

    The second half of Algorithm 2, split out so a pipeline stage that
    already holds the :func:`submatrix_masks` output (and passes it on to
    the encoder) does not recompute it.
    """
    masks = np.asarray(masks, dtype=np.int64)
    if masks.size == 0:
        return PatternHistogram(
            k, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
    patterns, freqs = np.unique(masks, return_counts=True)
    order = np.lexsort((patterns, -freqs))
    return PatternHistogram(
        k, patterns[order].astype(np.int64), freqs[order].astype(np.int64)
    )


def submatrix_masks(matrix: COOMatrix, k: int = DEFAULT_K) -> tuple:
    """Occupancy masks of all non-empty k-by-k submatrices.

    Returns
    -------
    (masks, keys):
        ``masks[i]`` is the bitmask of the submatrix with row-major key
        ``keys[i]`` (``key = subrow * nsubcols + subcol``); both sorted by
        key.
    """
    nsubcols = -(-matrix.shape[1] // k)
    sub_r = matrix.rows // k
    sub_c = matrix.cols // k
    bit = (matrix.rows % k) * k + (matrix.cols % k)
    keys = sub_r * nsubcols + sub_c
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    bits_sorted = np.int64(1) << bit[order].astype(np.int64)
    unique_keys, starts = np.unique(keys_sorted, return_index=True)
    masks = np.bitwise_or.reduceat(bits_sorted, starts)
    return masks.astype(np.int64), unique_keys.astype(np.int64)
