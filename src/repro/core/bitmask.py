"""Bitmask algebra for k-by-k local patterns.

A local pattern is the occupancy of one k-by-k submatrix, stored as a
k*k-bit integer: bit ``r * k + c`` is set when cell ``(r, c)`` holds a
non-zero (Section II-B of the paper uses k = 4, i.e. 16-bit masks with
65535 possible non-empty patterns).
"""

from __future__ import annotations

import numpy as np

#: Default local pattern size used throughout the paper.
DEFAULT_K = 4

# 16-bit popcount lookup table for vectorized histogram work.
_POPCOUNT16 = np.array(
    [bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8
)


def popcount(mask: int) -> int:
    """Number of set bits of a scalar mask."""
    return bin(int(mask)).count("1")


def popcount_array(masks: np.ndarray) -> np.ndarray:
    """Vectorized popcount for arrays of masks up to 32 bits wide."""
    masks = np.asarray(masks, dtype=np.uint32)
    return (
        _POPCOUNT16[masks & 0xFFFF].astype(np.int64)
        + _POPCOUNT16[masks >> 16]
    )


def full_mask(k: int = DEFAULT_K) -> int:
    """Mask with every cell of the k-by-k grid set."""
    return (1 << (k * k)) - 1


def bit_of(r: int, c: int, k: int = DEFAULT_K) -> int:
    """Bit index of cell (r, c)."""
    return r * k + c


def mask_from_coords(rows, cols, k: int = DEFAULT_K) -> int:
    """Build a mask from parallel row/col coordinate sequences."""
    mask = 0
    for r, c in zip(rows, cols):
        if not (0 <= r < k and 0 <= c < k):
            raise ValueError(f"cell ({r}, {c}) outside {k}x{k} grid")
        mask |= 1 << bit_of(r, c, k)
    return mask


def coords_from_mask(mask: int, k: int = DEFAULT_K) -> list:
    """List of (row, col) cells of a mask, in bit (row-major) order."""
    cells = []
    for bit in range(k * k):
        if mask >> bit & 1:
            cells.append((bit // k, bit % k))
    return cells


def mask_from_dense(block: np.ndarray) -> int:
    """Mask of the non-zero cells of a dense k-by-k block."""
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError("block must be square")
    k = block.shape[0]
    mask = 0
    for r in range(k):
        for c in range(k):
            if block[r, c] != 0:
                mask |= 1 << bit_of(r, c, k)
    return mask


def render_mask(mask: int, k: int = DEFAULT_K, set_char: str = "#",
                clear_char: str = ".") -> str:
    """ASCII-art rendering of a mask (rows top to bottom)."""
    lines = []
    for r in range(k):
        line = "".join(
            set_char if mask >> bit_of(r, c, k) & 1 else clear_char
            for c in range(k)
        )
        lines.append(line)
    return "\n".join(lines)


def row_mask(r: int, k: int = DEFAULT_K) -> int:
    """Row-wise (RW) pattern: all k cells of row ``r``."""
    return ((1 << k) - 1) << (r * k)


def col_mask(c: int, k: int = DEFAULT_K) -> int:
    """Column-wise (CW) pattern: all k cells of column ``c``."""
    mask = 0
    for r in range(k):
        mask |= 1 << bit_of(r, c, k)
    return mask


def diag_mask(shift: int, k: int = DEFAULT_K) -> int:
    """Cyclic diagonal pattern: cells (r, (r + shift) mod k)."""
    mask = 0
    for r in range(k):
        mask |= 1 << bit_of(r, (r + shift) % k, k)
    return mask


def antidiag_mask(shift: int, k: int = DEFAULT_K) -> int:
    """Cyclic anti-diagonal pattern: cells (r, (shift - r) mod k)."""
    mask = 0
    for r in range(k):
        mask |= 1 << bit_of(r, (shift - r) % k, k)
    return mask


def block_mask(r0: int, c0: int, bh: int, bw: int, k: int = DEFAULT_K,
               wrap: bool = False) -> int:
    """Block-wise (BW) pattern: a bh-by-bw block anchored at (r0, c0).

    With ``wrap`` the sampling window wraps around the grid torus-style,
    which yields the 16 distinct placements of portfolio 2 in Table V.
    """
    mask = 0
    for dr in range(bh):
        for dc in range(bw):
            r, c = r0 + dr, c0 + dc
            if wrap:
                r, c = r % k, c % k
            elif not (0 <= r < k and 0 <= c < k):
                raise ValueError(
                    f"block ({r0},{c0},{bh},{bw}) leaves the {k}x{k} grid"
                )
            mask |= 1 << bit_of(r, c, k)
    return mask


def transpose_mask(mask: int, k: int = DEFAULT_K) -> int:
    """Mask of the transposed pattern."""
    out = 0
    for r, c in coords_from_mask(mask, k):
        out |= 1 << bit_of(c, r, k)
    return out


def submask_count(mask: int) -> int:
    """Number of non-empty submasks of ``mask`` (2^popcount - 1)."""
    return (1 << popcount(mask)) - 1
