"""Position-word rules (paper Section III).

These rules inspect the decoded fields of every 32-bit position word
against the constraints the hardware relies on: 13-bit submatrix
indices bounded by the tile-size budget, a ``t_idx`` that addresses a
real portfolio slot, and CE/RE double-buffer flags placed exactly on
the groups where the next tile coordinate changes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.verify.diagnostics import Diagnostic, WARNING
from repro.verify.rules import (
    KIND_SPASM,
    MAX_OCCURRENCES,
    Rule,
    VerifyContext,
    register,
)


@register
class SubmatrixColumnRange(Rule):
    rule_id = "pos.c_range"
    kinds = (KIND_SPASM,)
    title = ("c_idx addresses a submatrix column inside the tile-size "
             "budget")
    paper = "III (13-bit submatrix indices)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0:
            return
        spt = spasm.tile_size // spasm.k
        bad = np.flatnonzero(ctx.fields["c_idx"] >= spt)
        for g in bad[:MAX_OCCURRENCES]:
            yield self.diag(
                f"c_idx {int(ctx.fields['c_idx'][g])} >= "
                f"{spt} submatrices per tile edge",
                location=ctx.group_location(int(g)),
                c_idx=int(ctx.fields["c_idx"][g]),
                bound=spt,
                count=int(bad.size),
            )


@register
class SubmatrixRowRange(Rule):
    rule_id = "pos.r_range"
    kinds = (KIND_SPASM,)
    title = "r_idx addresses a submatrix row inside the tile-size budget"
    paper = "III (13-bit submatrix indices)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0:
            return
        spt = spasm.tile_size // spasm.k
        bad = np.flatnonzero(ctx.fields["r_idx"] >= spt)
        for g in bad[:MAX_OCCURRENCES]:
            yield self.diag(
                f"r_idx {int(ctx.fields['r_idx'][g])} >= "
                f"{spt} submatrices per tile edge",
                location=ctx.group_location(int(g)),
                r_idx=int(ctx.fields["r_idx"][g]),
                bound=spt,
                count=int(bad.size),
            )


@register
class TemplateIndexRange(Rule):
    rule_id = "pos.t_range"
    kinds = (KIND_SPASM,)
    title = "t_idx addresses a template inside the portfolio"
    paper = "III (4-bit t_idx) / IV-D2 (opcode LUT depth)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0:
            return
        n_templates = len(spasm.portfolio.masks)
        bad = np.flatnonzero(ctx.fields["t_idx"] >= n_templates)
        for g in bad[:MAX_OCCURRENCES]:
            yield self.diag(
                f"t_idx {int(ctx.fields['t_idx'][g])} addresses beyond "
                f"the {n_templates}-template portfolio",
                location=ctx.group_location(
                    int(g), t_idx=int(ctx.fields["t_idx"][g])
                ),
                n_templates=n_templates,
                count=int(bad.size),
            )


@register
class ColumnEndBoundary(Rule):
    rule_id = "pos.ce_boundary"
    kinds = (KIND_SPASM,)
    title = ("CE is set exactly on the final group of each tile "
             "(x-buffer switch)")
    paper = "III (CE flag) / IV-B (double-buffered x)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0 or not ctx.structure_ok:
            return
        expected = np.zeros(spasm.n_groups, dtype=bool)
        boundary = np.asarray(spasm.tile_ptr[1:]) - 1
        expected[boundary[boundary >= 0]] = True
        mismatch = np.flatnonzero(ctx.fields["ce"] != expected)
        for g in mismatch[:MAX_OCCURRENCES]:
            if expected[g]:
                msg = "CE missing on the final group of its tile"
            else:
                msg = "CE set on a group that is not tile-final"
            yield self.diag(
                msg,
                location=ctx.group_location(int(g)),
                expected=bool(expected[g]),
                count=int(mismatch.size),
            )


@register
class RowEndBoundary(Rule):
    rule_id = "pos.re_boundary"
    kinds = (KIND_SPASM,)
    title = ("RE is set exactly on the final group of each tile row "
             "(partial-sum flush)")
    paper = "III (RE flag) / IV-B (psum buffer)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0 or not ctx.structure_ok:
            return
        fields = ctx.fields
        group_rows = spasm.tile_rows[ctx.tile_of_group]
        expected = np.empty(spasm.n_groups, dtype=bool)
        expected[:-1] = group_rows[1:] != group_rows[:-1]
        expected[-1] = True
        mismatch = np.flatnonzero(fields["re"] != expected)
        for g in mismatch[:MAX_OCCURRENCES]:
            if expected[g]:
                msg = "RE missing on the final group of its tile row"
            else:
                msg = "RE set on a group that is not tile-row-final"
            yield self.diag(
                msg,
                location=ctx.group_location(int(g)),
                expected=bool(expected[g]),
                count=int(mismatch.size),
            )
        # RE => CE: a tile-row boundary is always a tile boundary.
        orphan = np.flatnonzero(fields["re"] & ~fields["ce"])
        for g in orphan[:MAX_OCCURRENCES]:
            yield self.diag(
                "RE set without CE (a tile-row boundary must also be a "
                "tile boundary)",
                location=ctx.group_location(int(g)),
                count=int(orphan.size),
            )


@register
class DuplicateGroup(Rule):
    rule_id = "pos.duplicate_group"
    kinds = (KIND_SPASM,)
    title = ("no two groups of a tile repeat the same "
             "(r_idx, c_idx, t_idx)")
    paper = "III (one group per template instance)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0 or not ctx.structure_ok:
            return
        fields = ctx.fields
        spt = max(spasm.tile_size // spasm.k, 1)
        key = (
            (ctx.tile_of_group * spt + fields["r_idx"]) * spt
            + fields["c_idx"]
        ) * 16 + fields["t_idx"]
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        dup = np.flatnonzero(key_sorted[1:] == key_sorted[:-1])
        for i in dup[:MAX_OCCURRENCES]:
            g = int(order[i + 1])
            yield self.diag(
                "duplicate (r_idx, c_idx, t_idx) group within a tile",
                location=ctx.group_location(
                    g,
                    r_idx=int(fields["r_idx"][g]),
                    c_idx=int(fields["c_idx"][g]),
                    t_idx=int(fields["t_idx"][g]),
                ),
                first_group=int(order[i]),
                count=int(dup.size),
            )


@register
class CanonicalStreamOrder(Rule):
    rule_id = "pos.stream_order"
    kinds = (KIND_SPASM,)
    severity = WARNING
    title = ("groups follow the encoder's canonical row-major "
             "(r_idx, c_idx) order within each tile")
    paper = "III (row-major tile streaming)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        # A permuted intra-tile order still computes the same result
        # (accumulation commutes) and is deliberately produced by
        # repro.hw.hazards.hazard_aware_reorder, hence warn severity.
        spasm = ctx.spasm
        if spasm.n_groups == 0 or not ctx.structure_ok:
            return
        fields = ctx.fields
        spt = max(spasm.tile_size // spasm.k, 1)
        key = (
            (ctx.tile_of_group * spt + fields["r_idx"]) * spt
            + fields["c_idx"]
        )
        unsorted = np.flatnonzero(key[1:] < key[:-1])
        # Only flag breaks inside a tile; tile transitions reset the key.
        same_tile = (
            ctx.tile_of_group[1:] == ctx.tile_of_group[:-1]
        )
        unsorted = unsorted[same_tile[unsorted]]
        for i in unsorted[:MAX_OCCURRENCES]:
            g = int(i) + 1
            yield self.diag(
                "group is out of canonical (r_idx, c_idx) stream order "
                "(legal, but not the encoder's canonical layout)",
                location=ctx.group_location(
                    g,
                    r_idx=int(fields["r_idx"][g]),
                    c_idx=int(fields["c_idx"][g]),
                ),
                count=int(unsorted.size),
            )
