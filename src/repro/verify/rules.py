"""Rule base class, registry and the shared verification context.

A rule is a small, pure check over one artifact kind.  Rules register
themselves with :func:`register` at import time; the runner selects
them by artifact kind and feeds each a :class:`VerifyContext` with the
artifact plus lazily-computed derived views (decoded position fields,
group-to-tile mapping, cached decomposition tables), so individual
rules stay cheap and declarative.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.verify.diagnostics import (
    ERROR,
    Diagnostic,
    Location,
)

#: Artifact kinds a rule can apply to.
KIND_SPASM = "spasm"
KIND_OPCODE = "opcode"
KIND_MEMORY = "memory"
KIND_PLAN = "plan"
KIND_ANALYZE = "analyze"

#: Cap on per-rule occurrence diagnostics (each carries the full count).
MAX_OCCURRENCES = 8


@dataclasses.dataclass
class VerifyContext:
    """Everything a rule may inspect, with cached derived views.

    Only the fields relevant to the artifact kind are populated; rules
    declare their needs via :attr:`Rule.requires` and are skipped when
    a required field is absent.
    """

    spasm: Optional[Any] = None  # repro.core.format.SpasmMatrix
    source: Optional[Any] = None  # repro.matrix.coo.COOMatrix
    config: Optional[Any] = None  # repro.hw.configs.HwConfig
    image: Optional[Any] = None  # repro.hw.memory_image.MemoryImage
    opcodes: Optional[Sequence[int]] = None
    portfolio: Optional[Any] = None  # repro.core.templates.Portfolio
    plan: Optional[Any] = None  # repro.exec.plan.ExecutionPlan

    _fields: Optional[Dict[str, np.ndarray]] = dataclasses.field(
        default=None, repr=False
    )
    _tile_of_group: Optional[np.ndarray] = dataclasses.field(
        default=None, repr=False
    )
    _structure_ok: Optional[bool] = dataclasses.field(
        default=None, repr=False
    )
    _expanded: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = (
        dataclasses.field(default=None, repr=False)
    )

    # -- derived views -------------------------------------------------
    @property
    def fields(self) -> Dict[str, np.ndarray]:
        """Decoded position-word field arrays of the SPASM stream."""
        if self._fields is None:
            from repro.core.encoding import unpack_position_array

            assert self.spasm is not None
            self._fields = unpack_position_array(self.spasm.words)
        return self._fields

    @property
    def structure_ok(self) -> bool:
        """Whether the tile directory arrays are structurally sane.

        Rules that index through ``tile_ptr`` (boundary flags, group
        locations) must check this first; when it is false the
        ``fmt.structure`` rule has already reported errors and the
        dependent rules skip instead of crashing on malformed offsets.
        """
        if self._structure_ok is None:
            s = self.spasm
            assert s is not None
            ptr = np.asarray(s.tile_ptr)
            self._structure_ok = bool(
                ptr.size == s.n_tiles + 1
                and ptr.size >= 1
                and ptr[0] == 0
                and ptr[-1] == s.n_groups
                and not np.any(np.diff(ptr) < 0)
                and s.tile_rows.size == s.tile_cols.size
                and s.values.shape == (s.n_groups, s.k)
            )
        return self._structure_ok

    @property
    def tile_of_group(self) -> np.ndarray:
        """Tile index of every group (requires :attr:`structure_ok`)."""
        if self._tile_of_group is None:
            s = self.spasm
            assert s is not None
            self._tile_of_group = np.repeat(
                np.arange(s.n_tiles), np.diff(s.tile_ptr)
            )
        return self._tile_of_group

    @property
    def decodable(self) -> bool:
        """Whether the stream can be decoded to coordinates safely.

        Rules that expand groups to matrix cells need a sane tile
        directory and in-range ``t_idx`` fields; when either fails,
        ``fmt.structure`` / ``pos.t_range`` have already reported.
        """
        if not self.structure_ok:
            return False
        s = self.spasm
        if s.n_groups == 0:
            return True
        return bool(
            self.fields["t_idx"].max() < len(s.portfolio.masks)
        )

    @property
    def expanded(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decoded (rows, cols, values) of every stored slot.

        Only valid when :attr:`decodable`; slot ``i`` belongs to group
        ``i // k``.
        """
        if self._expanded is None:
            assert self.spasm is not None
            self._expanded = self.spasm._expand()
        return self._expanded

    def group_location(self, group: int, **extra: Any) -> Location:
        """Build a :class:`Location` for a global group index."""
        s = self.spasm
        assert s is not None
        tile: Optional[int] = None
        tile_row: Optional[int] = None
        tile_col: Optional[int] = None
        if self.structure_ok and s.n_tiles:
            tile = int(
                np.searchsorted(s.tile_ptr, group, side="right") - 1
            )
            tile = min(max(tile, 0), s.n_tiles - 1)
            tile_row = int(s.tile_rows[tile])
            tile_col = int(s.tile_cols[tile])
        return Location(
            tile=tile, tile_row=tile_row, tile_col=tile_col,
            group=int(group), **extra,
        )

    def tile_location(self, tile: int, **extra: Any) -> Location:
        """Build a :class:`Location` for a tile directory index."""
        s = self.spasm
        assert s is not None
        tile_row: Optional[int] = None
        tile_col: Optional[int] = None
        if 0 <= tile < s.tile_rows.size and tile < s.tile_cols.size:
            tile_row = int(s.tile_rows[tile])
            tile_col = int(s.tile_cols[tile])
        return Location(
            tile=int(tile), tile_row=tile_row, tile_col=tile_col, **extra
        )


class Rule:
    """Base class for one static invariant check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Diagnostic` records (none for a clean artifact).
    """

    #: Stable identifier, ``family.name`` (e.g. ``"pos.ce_boundary"``).
    rule_id: str = ""
    #: Artifact kinds the rule applies to.
    kinds: Tuple[str, ...] = (KIND_SPASM,)
    #: Default severity of this rule's diagnostics.
    severity: str = ERROR
    #: One-line description (surfaced in docs and ``--json`` output).
    title: str = ""
    #: Paper section whose invariant the rule enforces.
    paper: str = ""
    #: Context attributes that must be non-None for the rule to run.
    requires: Tuple[str, ...] = ()

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, message: str, location: Optional[Location] = None,
             severity: Optional[str] = None,
             **details: Any) -> Diagnostic:
        """Build a diagnostic attributed to this rule."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=severity or self.severity,
            message=message,
            location=location or Location(),
            details=details,
        )


#: Global registry: rule_id -> rule instance.
REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} does not define rule_id")
    if rule.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    REGISTRY[rule.rule_id] = rule
    return cls


def rules_for(kinds: Sequence[str]) -> List[Rule]:
    """All registered rules applicable to any of ``kinds``, id order."""
    wanted = set(kinds)
    return [
        rule
        for __, rule in sorted(REGISTRY.items())
        if wanted.intersection(rule.kinds)
    ]


def all_rules() -> List[Rule]:
    """Every registered rule in id order (for docs and listings)."""
    return [rule for __, rule in sorted(REGISTRY.items())]
