"""Symbolic proof obligations surfaced as verify rules.

:mod:`repro.analyze.symbolic` proves six safety obligations over a
compiled :class:`~repro.exec.plan.ExecutionPlan` by abstract
interpretation — no SpMV is executed.  These rules adapt each
obligation to the :mod:`repro.verify` rule framework so refuted proofs
flow through the same :class:`~repro.verify.diagnostics.Report`
plumbing (CLI, ``--json``, pipeline passes, guard) as every other
invariant.  A proved obligation yields no diagnostics; a refuted one
yields an ERROR carrying the pinpointed witness in its details.

The obligations also run standalone — with richer PROVED/SKIPPED
reporting and certified bounds — via
:func:`repro.analyze.analyze_plan` and ``python -m repro analyze``.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.verify.diagnostics import Diagnostic
from repro.verify.rules import (
    KIND_ANALYZE,
    Rule,
    VerifyContext,
    register,
)


class _ObligationRule(Rule):
    """Adapter: run one symbolic checker, report refutations."""

    kinds = (KIND_ANALYZE,)
    requires = ("plan",)

    def obligation(self, ctx: VerifyContext) -> Any:
        raise NotImplementedError

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.analyze.symbolic import REFUTED

        obligation = self.obligation(ctx)
        if obligation.status != REFUTED:
            return
        yield self.diag(
            f"refuted {obligation.obligation_id}: "
            f"{obligation.statement}",
            **dict(obligation.details),
        )


@register
class AnalyzeIndexWidth(_ObligationRule):
    rule_id = "analyze.index_width"
    title = ("symbolic proof: every gather/scatter index fits the "
             "chosen dtype, with a certified extent bound")
    paper = "software step ⑥ (compact plan layouts)"

    def obligation(self, ctx: VerifyContext) -> Any:
        from repro.analyze.symbolic import check_index_width

        return check_index_width(ctx.plan)


@register
class AnalyzeCoverage(_ObligationRule):
    rule_id = "analyze.coverage"
    title = ("symbolic proof: the segmentation writes each output row "
             "exactly once (no gaps, no overlaps)")
    paper = "software step ⑥ (segmented accumulation)"

    def obligation(self, ctx: VerifyContext) -> Any:
        from repro.analyze.symbolic import check_segment_coverage

        return check_segment_coverage(ctx.plan)


@register
class AnalyzeShards(_ObligationRule):
    rule_id = "analyze.shards"
    title = ("symbolic proof: sharded write sets are pairwise "
             "disjoint for the whole jobs grid (determinism theorem)")
    paper = "software step ⑥ (sharded dispatch)"

    def obligation(self, ctx: VerifyContext) -> Any:
        from repro.analyze.symbolic import check_shard_disjointness

        return check_shard_disjointness(ctx.plan)


@register
class AnalyzeImage(_ObligationRule):
    rule_id = "analyze.image"
    title = ("symbolic proof: packed memory-image offsets stay inside "
             "their channel regions")
    paper = "hardware memory map (HBM channel packing)"
    requires = ("image",)

    def obligation(self, ctx: VerifyContext) -> Any:
        from repro.analyze.symbolic import check_image_bounds

        k = ctx.spasm.k if ctx.spasm is not None else 4
        return check_image_bounds(
            ctx.image, k=k, spasm=ctx.spasm
        )


@register
class AnalyzePolicy(_ObligationRule):
    rule_id = "analyze.policy"
    title = ("symbolic proof: guard validate(), plan.* verify rules "
             "and the dtype policy tables cannot drift")
    paper = "software step ⑥ (compiled execution)"

    def obligation(self, ctx: VerifyContext) -> Any:
        from repro.analyze.symbolic import check_policy_consistency

        return check_policy_consistency(ctx.plan)


@register
class AnalyzeBackend(_ObligationRule):
    rule_id = "analyze.backend"
    title = ("symbolic proof: every dispatchable op resolves inside "
             "a registered backend's declared capability envelope")
    paper = "software step ⑥ (pluggable kernel backends)"

    def obligation(self, ctx: VerifyContext) -> Any:
        from repro.analyze.symbolic import check_backend_capability

        return check_backend_capability(ctx.plan)
