"""Rule runner: select rules by artifact kind, collect a Report.

The entry points here are what the rest of the code base calls:

* :func:`verify_spasm` — check an encoded :class:`SpasmMatrix` (and,
  when ``k`` permits, the opcode table its portfolio induces).
* :func:`verify_opcode_table` — check an explicit opcode LUT.
* :func:`verify_memory_image` — check packed HBM images, optionally
  against the encoding they were packed from.
* :func:`verify_file` — load a ``.npz`` artifact and verify it.

All of them are static: nothing is executed on the simulator; rules
only inspect the artifacts and cheap derived views.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.verify.diagnostics import Diagnostic, Report
from repro.verify.rules import (
    KIND_ANALYZE,
    KIND_MEMORY,
    KIND_OPCODE,
    KIND_PLAN,
    KIND_SPASM,
    VerifyContext,
    rules_for,
)

# Rule modules register themselves on import.
from repro.verify import analyze_rules  # noqa: F401
from repro.verify import format_rules  # noqa: F401
from repro.verify import memory_rules  # noqa: F401
from repro.verify import opcode_rules  # noqa: F401
from repro.verify import plan_rules  # noqa: F401
from repro.verify import position_rules  # noqa: F401


def run_rules(ctx: VerifyContext,
              kinds: Sequence[str]) -> Report:
    """Run every registered rule matching ``kinds`` against ``ctx``.

    Rules whose :attr:`~repro.verify.rules.Rule.requires` attributes
    are absent from the context are skipped (and not counted in
    ``rules_run``).
    """
    diagnostics: List[Diagnostic] = []
    rules_run: List[str] = []
    for rule in rules_for(kinds):
        if any(getattr(ctx, name) is None for name in rule.requires):
            continue
        rules_run.append(rule.rule_id)
        diagnostics.extend(rule.check(ctx))
    return Report(diagnostics=diagnostics, rules_run=rules_run)


def verify_spasm(spasm: Any,
                 source: Optional[Any] = None,
                 config: Optional[Any] = None,
                 with_opcodes: bool = True) -> Report:
    """Statically verify an encoded SPASM stream.

    Parameters
    ----------
    spasm:
        The :class:`~repro.core.format.SpasmMatrix` to check.
    source:
        Optional source :class:`~repro.matrix.coo.COOMatrix`; enables
        the ``fmt.roundtrip`` decode-equivalence rule.
    config:
        Optional hardware configuration (reserved for location
        enrichment; stream rules do not need it).
    with_opcodes:
        Also derive and check the opcode LUT the portfolio induces
        (skipped automatically when the datapath cannot route it,
        e.g. ``k != 4``).
    """
    from repro.hw.opcode import OpcodeError, opcode_table

    kinds = [KIND_SPASM]
    opcodes: Optional[Sequence[int]] = None
    if with_opcodes:
        try:
            opcodes = opcode_table(spasm.portfolio)
        except OpcodeError:
            opcodes = None  # unroutable portfolio: stream rules only
        else:
            kinds.append(KIND_OPCODE)
    ctx = VerifyContext(
        spasm=spasm,
        source=source,
        config=config,
        opcodes=opcodes,
        portfolio=spasm.portfolio,
    )
    return run_rules(ctx, kinds)


def verify_opcode_table(opcodes: Sequence[int],
                        portfolio: Optional[Any] = None) -> Report:
    """Statically verify an explicit opcode LUT against a portfolio."""
    ctx = VerifyContext(opcodes=list(opcodes), portfolio=portfolio)
    return run_rules(ctx, [KIND_OPCODE])


def verify_memory_image(image: Any,
                        spasm: Optional[Any] = None) -> Report:
    """Statically verify packed HBM memory images.

    With ``spasm`` supplied, additionally checks the descriptor
    schedule and that unpacking reproduces every PE's stream.
    """
    ctx = VerifyContext(
        image=image,
        spasm=spasm,
        config=image.config,
        portfolio=spasm.portfolio if spasm is not None else None,
    )
    return run_rules(ctx, [KIND_MEMORY])


def verify_plan(plan: Any, spasm: Optional[Any] = None) -> Report:
    """Statically verify a compiled execution plan.

    Checks every dispatch invariant of the plan arrays plus the
    build-time checksum (``plan.integrity``).  With ``spasm`` supplied,
    additionally proves the plan belongs to that stream
    (``plan.digest``) and that padding elision was exact
    (``plan.slots``).  The resilience guard
    (:class:`repro.resilience.guard.ExecutionGuard`) runs the same
    validation before every dispatch of a fresh plan.
    """
    ctx = VerifyContext(plan=plan, spasm=spasm)
    return run_rules(ctx, [KIND_PLAN])


def verify_analysis(plan: Any,
                    spasm: Optional[Any] = None,
                    image: Optional[Any] = None) -> Report:
    """Run the symbolic proof obligations as verify rules.

    Adapts the :mod:`repro.analyze.symbolic` abstract-interpretation
    pass (index-width safety, segment coverage, shard race-freedom,
    memory-image bounds, policy consistency) to the rule framework:
    refuted obligations come back as ``analyze.*`` ERROR diagnostics
    with pinpointed witnesses; proved obligations are silent.  For the
    full PROVED/REFUTED obligation report with certified bounds use
    :func:`repro.analyze.analyze_plan` directly.
    """
    ctx = VerifyContext(plan=plan, spasm=spasm, image=image)
    return run_rules(ctx, [KIND_ANALYZE])


def verify_file(path: str,
                with_opcodes: bool = True) -> Report:
    """Load a serialized SPASM artifact and verify it."""
    from repro.core.serialize import load_spasm

    spasm = load_spasm(path)
    return verify_spasm(spasm, with_opcodes=with_opcodes)
