"""Opcode rules (paper Section IV-D1).

These rules check a PE's 30-bit VALU opcode table against the template
portfolio it serves: word width, decodability of the adder operand
muxes, output-lane routing restricted to the rows each template
covers, the row-major multiplier lane assignment, and — strongest — a
symbolic re-execution proving the routed datapath computes exactly the
per-row sums the template semantics demand.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.verify.diagnostics import Diagnostic, Location
from repro.verify.rules import (
    KIND_OPCODE,
    Rule,
    VerifyContext,
    register,
)


def _decoded(word: int) -> Tuple[Optional[Any], Optional[str]]:
    """Decode a word, returning (opcode, error_message)."""
    from repro.hw.opcode import OpcodeError, decode_opcode

    try:
        return decode_opcode(int(word)), None
    except OpcodeError as exc:
        return None, str(exc)


def _table_pairs(
    ctx: VerifyContext,
) -> List[Tuple[int, int, Optional[int]]]:
    """(t_idx, word, mask) pairs for the overlapping table prefix."""
    assert ctx.opcodes is not None
    masks = ctx.portfolio.masks if ctx.portfolio is not None else ()
    out: List[Tuple[int, int, Optional[int]]] = []
    for t, word in enumerate(ctx.opcodes):
        mask = masks[t] if t < len(masks) else None
        out.append((t, int(word), mask))
    return out


@register
class TableSize(Rule):
    rule_id = "opc.table_size"
    kinds = (KIND_OPCODE,)
    title = "the opcode LUT holds exactly one opcode per template"
    paper = "IV-D2 (per-template opcode LUT)"
    requires = ("opcodes", "portfolio")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        n_opcodes = len(ctx.opcodes)
        n_templates = len(ctx.portfolio.masks)
        if n_opcodes != n_templates:
            yield self.diag(
                f"opcode table holds {n_opcodes} entries for "
                f"{n_templates} templates",
                n_opcodes=n_opcodes,
                n_templates=n_templates,
            )


@register
class OpcodeWidth(Rule):
    rule_id = "opc.width"
    kinds = (KIND_OPCODE,)
    title = "every opcode fits the 30-bit budget"
    paper = "IV-D1 (30-bit opcode)"
    requires = ("opcodes",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.hw.opcode import OPCODE_BITS

        for t, word in enumerate(ctx.opcodes):
            if not 0 <= int(word) < (1 << OPCODE_BITS):
                yield self.diag(
                    f"opcode {int(word):#x} does not fit "
                    f"{OPCODE_BITS} bits",
                    location=Location(t_idx=t),
                    word=int(word),
                )


@register
class AdderOperands(Rule):
    rule_id = "opc.operands"
    kinds = (KIND_OPCODE,)
    title = ("adder operand muxes reference defined datapath nodes "
             "({m0..m3} for a0, {m0..m3, a0} for a1)")
    paper = "IV-D1 (adder arrangement)"
    requires = ("opcodes",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.hw.opcode import OPCODE_BITS

        for t, word in enumerate(ctx.opcodes):
            if not 0 <= int(word) < (1 << OPCODE_BITS):
                continue  # opc.width reports
            __, err = _decoded(int(word))
            if err is not None:
                yield self.diag(
                    f"opcode does not decode: {err}",
                    location=Location(t_idx=t),
                    word=int(word),
                )


@register
class OutputRowRouting(Rule):
    rule_id = "opc.out_rows"
    kinds = (KIND_OPCODE,)
    title = ("out_sel routes a result to exactly the submatrix rows "
             "the template covers")
    paper = "IV-D1 (output lane routing)"
    requires = ("opcodes", "portfolio")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.core.bitmask import coords_from_mask, popcount
        from repro.hw.opcode import NODE_ZERO

        k = ctx.portfolio.k
        for t, word, mask in _table_pairs(ctx):
            if mask is None or popcount(mask) != k:
                continue
            opcode, __ = _decoded(word)
            if opcode is None:
                continue  # opc.operands reports
            covered = {r for r, __ in coords_from_mask(mask, k)}
            for row, sel in enumerate(opcode.out_sel):
                if row in covered and sel == NODE_ZERO:
                    yield self.diag(
                        f"output lane {row} is muxed to zero but the "
                        f"template covers row {row}",
                        location=Location(t_idx=t),
                        row=row,
                    )
                elif row not in covered and sel != NODE_ZERO:
                    yield self.diag(
                        f"output lane {row} routes node {sel} but the "
                        f"template has no cell in row {row}",
                        location=Location(t_idx=t),
                        row=row,
                        out_sel=sel,
                    )


@register
class MultiplierLanes(Rule):
    rule_id = "opc.mul_lanes"
    kinds = (KIND_OPCODE,)
    title = ("mul_sel feeds each multiplier the x lane of its "
             "template cell's column, in row-major (contiguous-row) "
             "lane order")
    paper = "IV-D1 (row-major cells -> contiguous multiplier lanes)"
    requires = ("opcodes", "portfolio")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.core.bitmask import coords_from_mask, popcount

        k = ctx.portfolio.k
        for t, word, mask in _table_pairs(ctx):
            if mask is None or popcount(mask) != k:
                continue
            opcode, __ = _decoded(word)
            if opcode is None:
                continue
            cells = coords_from_mask(mask, k)
            for lane, (__, col) in enumerate(cells):
                if opcode.mul_sel[lane] != col:
                    yield self.diag(
                        f"multiplier lane {lane} selects x lane "
                        f"{opcode.mul_sel[lane]}, but the template's "
                        f"cell #{lane} (row-major) sits in column "
                        f"{col}",
                        location=Location(t_idx=t),
                        lane=lane,
                        mul_sel=opcode.mul_sel[lane],
                        expected=col,
                    )


@register
class DatapathSemantics(Rule):
    rule_id = "opc.semantics"
    kinds = (KIND_OPCODE,)
    title = ("symbolically executing the routed datapath reproduces "
             "each covered row's sum of products")
    paper = "IV-D1 (Figure 8 datapath)"
    requires = ("opcodes", "portfolio")

    #: Two independent operand bases; agreement on both rules out
    #: coincidental sums (distinct primes make collisions implausible).
    _BASES = (
        (np.array([3.0, 5.0, 7.0, 11.0]),
         np.array([13.0, 17.0, 19.0, 23.0])),
        (np.array([29.0, 31.0, 37.0, 41.0]),
         np.array([43.0, 47.0, 53.0, 59.0])),
    )

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.core.bitmask import coords_from_mask, popcount
        from repro.hw.valu import VALU, VALUOp

        k = ctx.portfolio.k
        if k != 4:
            return  # the VALU datapath model is 4 lanes wide
        valu = VALU()
        for t, word, mask in _table_pairs(ctx):
            if mask is None or popcount(mask) != k:
                continue
            opcode, __ = _decoded(word)
            if opcode is None:
                continue
            cells = coords_from_mask(mask, k)
            for values, x in self._BASES:
                expected = np.zeros(k)
                for lane, (row, col) in enumerate(cells):
                    expected[row] += values[lane] * x[col]
                got = valu.execute(
                    VALUOp(opcode=word, values=values, x_segment=x)
                )
                bad_rows = np.flatnonzero(got != expected)
                if bad_rows.size:
                    yield self.diag(
                        f"datapath output rows {bad_rows.tolist()} "
                        "disagree with the template's per-row sums "
                        "of products",
                        location=Location(t_idx=t),
                        rows=bad_rows.tolist(),
                        got=got.tolist(),
                        expected=expected.tolist(),
                    )
                    break
