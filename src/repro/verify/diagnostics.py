"""Structured diagnostics emitted by the static verifier.

Every :class:`~repro.verify.rules.Rule` reports violations as
:class:`Diagnostic` records — never exceptions — so one verification
pass surfaces *all* problems of an artifact at once.  A
:class:`Report` aggregates the diagnostics of a run together with the
list of rules that executed, renders them for humans or machines
(``--json``), and can convert errors back into the exception types the
rest of the code base expects (:func:`Report.raise_if_errors`).
"""

from __future__ import annotations

import dataclasses
import json
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
)

#: Diagnostic severities, most severe first.
ERROR = "error"
WARNING = "warn"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

_SEVERITY_RANK = {sev: rank for rank, sev in enumerate(SEVERITIES)}


class VerificationError(ValueError):
    """Raised when a verification pass with errors is escalated.

    Carries the offending :class:`Diagnostic` list on ``.diagnostics``
    so callers can still inspect every violation programmatically.
    """

    def __init__(self, message: str,
                 diagnostics: Optional[Iterable["Diagnostic"]] = None):
        super().__init__(message)
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])


@dataclasses.dataclass(frozen=True)
class Location:
    """Where in an encoded artifact a diagnostic points.

    All fields are optional; rules fill in whatever granularity the
    artifact offers (a position-word rule knows tile and group, a
    memory-image rule knows PE and channel).
    """

    tile: Optional[int] = None  # index into the tile directory
    tile_row: Optional[int] = None  # tileRowIdx
    tile_col: Optional[int] = None  # tileColIdx
    group: Optional[int] = None  # global group index (stream order)
    r_idx: Optional[int] = None  # submatrix row within the tile
    c_idx: Optional[int] = None  # submatrix column within the tile
    t_idx: Optional[int] = None  # template index
    pe: Optional[int] = None  # processing element id
    channel: Optional[str] = None  # HBM channel name

    def as_dict(self) -> Dict[str, Any]:
        """Dict view with the unset fields dropped."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if getattr(self, field.name) is not None
        }

    def __str__(self) -> str:
        parts = []
        if self.tile is not None:
            coords = ""
            if self.tile_row is not None and self.tile_col is not None:
                coords = f" (r={self.tile_row},c={self.tile_col})"
            parts.append(f"tile {self.tile}{coords}")
        if self.group is not None:
            parts.append(f"group {self.group}")
        if self.r_idx is not None and self.c_idx is not None:
            parts.append(f"sub ({self.r_idx},{self.c_idx})")
        if self.t_idx is not None:
            parts.append(f"t_idx {self.t_idx}")
        if self.pe is not None:
            parts.append(f"pe {self.pe}")
        if self.channel is not None:
            parts.append(f"channel {self.channel}")
        return ", ".join(parts)


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    Attributes
    ----------
    rule_id:
        Stable identifier of the emitting rule (``family.name``).
    severity:
        ``"error"`` (broken artifact), ``"warn"`` (legal but
        suspicious) or ``"info"``.
    message:
        Human-readable description of the violation.
    location:
        Artifact coordinates of the finding.
    details:
        Machine-readable payload (field values, bounds, counts).
    """

    rule_id: str
    severity: str
    message: str
    location: Location = Location()
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict view."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "location": self.location.as_dict(),
            "details": dict(self.details),
        }

    def render(self) -> str:
        """One-line human rendering."""
        where = str(self.location)
        where = f" [{where}]" if where else ""
        return f"{self.severity.upper():5s} {self.rule_id}{where}: " \
               f"{self.message}"


@dataclasses.dataclass
class Report:
    """Outcome of one verification pass."""

    diagnostics: List[Diagnostic] = dataclasses.field(default_factory=list)
    rules_run: List[str] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        self.diagnostics.sort(
            key=lambda d: (_SEVERITY_RANK.get(d.severity, len(SEVERITIES)),
                           d.rule_id)
        )

    @property
    def errors(self) -> List[Diagnostic]:
        """The error-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """The warn-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were reported."""
        return not self.errors

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, other: "Report") -> "Report":
        """Merge another report into this one (in place)."""
        self.diagnostics.extend(other.diagnostics)
        self.rules_run.extend(
            r for r in other.rules_run if r not in self.rules_run
        )
        self.__post_init__()
        return self

    def summary(self) -> str:
        """``"N errors, M warnings (R rules run)"``."""
        return (
            f"{len(self.errors)} errors, {len(self.warnings)} warnings "
            f"({len(self.rules_run)} rules run)"
        )

    def render(self) -> str:
        """Multi-line human rendering of every diagnostic + summary."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict view of the whole report."""
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "rules_run": list(self.rules_run),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def raise_if_errors(
        self,
        exc_type: Callable[..., ValueError] = VerificationError,
    ) -> None:
        """Raise ``exc_type`` aggregating every error diagnostic.

        ``exc_type`` must accept ``(message, diagnostics=...)`` like
        :class:`VerificationError` (``repro.core.format.FormatError``
        does); the message enumerates all violations, not just the
        first.
        """
        errors = self.errors
        if not errors:
            return
        lines = [f"{len(errors)} format invariant violation(s):"]
        lines.extend(f"  {d.render()}" for d in errors)
        raise exc_type("\n".join(lines), diagnostics=errors)
