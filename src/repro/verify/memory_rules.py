"""Memory-image rules (paper Section IV / docs/FORMAT.md HBM layout).

These rules check a packed :class:`~repro.hw.memory_image.MemoryImage`
without running the simulator: the per-channel inventory against the
hardware configuration, byte lengths against the descriptor tables,
the round-robin interleaving math, and — when the source encoding is
supplied — that descriptors match the deterministic tile schedule and
that unpacking the images reproduces every PE's stream exactly.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.verify.diagnostics import Diagnostic, Location
from repro.verify.rules import (
    KIND_MEMORY,
    MAX_OCCURRENCES,
    Rule,
    VerifyContext,
    register,
)


def _groups_per_pe(image) -> List[int]:
    """Group counts per PE from the image's descriptor tables."""
    return [
        sum(int(n) for __, __, n in descriptor)
        for descriptor in image.descriptors
    ]


@register
class ChannelInventory(Rule):
    rule_id = "mem.channels"
    kinds = (KIND_MEMORY,)
    title = ("the image holds exactly the value/position channels the "
             "hardware configuration provides")
    paper = "IV-D3 (HBM channel budget)"
    requires = ("image",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        image = ctx.image
        config = image.config
        inventory = config.channel_inventory()
        expected_value = set(inventory["value"])
        expected_pos = set(inventory["position"])
        for name in sorted(expected_value - set(image.value_images)):
            yield self.diag(
                f"value channel {name} is missing from the image",
                location=Location(channel=name),
            )
        for name in sorted(set(image.value_images) - expected_value):
            yield self.diag(
                f"unexpected value channel {name} "
                f"({config.name} provides {len(expected_value)})",
                location=Location(channel=name),
            )
        for name in sorted(expected_pos - set(image.position_images)):
            yield self.diag(
                f"position channel {name} is missing from the image",
                location=Location(channel=name),
            )
        for name in sorted(set(image.position_images) - expected_pos):
            yield self.diag(
                f"unexpected position channel {name} "
                f"({config.name} provides {len(expected_pos)})",
                location=Location(channel=name),
            )
        if len(image.descriptors) != config.num_pes:
            yield self.diag(
                f"{len(image.descriptors)} descriptor tables for "
                f"{config.num_pes} PEs",
                n_descriptors=len(image.descriptors),
                num_pes=config.num_pes,
            )


@register
class ValueImageBytes(Rule):
    rule_id = "mem.value_bytes"
    kinds = (KIND_MEMORY,)
    title = ("each value channel holds one k*4-byte payload per group "
             "of the 4 PEs it serves")
    paper = "IV-D3 (one value channel per 4 PEs)"
    requires = ("image",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.hw.configs import (
            LANES_PER_PE,
            PES_PER_GROUP,
            PES_PER_VALUE_CHANNEL,
        )

        image = ctx.image
        config = image.config
        k = ctx.spasm.k if ctx.spasm is not None else LANES_PER_PE
        payload = k * 4
        counts = _groups_per_pe(image)
        if len(counts) != config.num_pes:
            return  # mem.channels reports
        for g in range(config.num_pe_groups):
            base = g * PES_PER_GROUP
            for v in range(PES_PER_GROUP // PES_PER_VALUE_CHANNEL):
                name = f"g{g}.value{v}"
                img = image.value_images.get(name)
                if img is None:
                    continue  # mem.channels reports
                pes = [
                    base + v * PES_PER_VALUE_CHANNEL + i
                    for i in range(PES_PER_VALUE_CHANNEL)
                ]
                expected = payload * sum(counts[pe] for pe in pes)
                if len(img) % payload:
                    yield self.diag(
                        f"value channel {name} holds {len(img)} bytes, "
                        f"not a multiple of the {payload}-byte group "
                        "payload",
                        location=Location(channel=name),
                        image_bytes=len(img),
                    )
                elif len(img) != expected:
                    yield self.diag(
                        f"value channel {name} holds {len(img)} bytes "
                        f"but its PEs' descriptors announce "
                        f"{expected}",
                        location=Location(channel=name),
                        image_bytes=len(img),
                        descriptor_bytes=expected,
                    )


@register
class PositionImageBytes(Rule):
    rule_id = "mem.pos_bytes"
    kinds = (KIND_MEMORY,)
    title = ("each PE group's position channels hold one 32-bit word "
             "per group, dealt round-robin")
    paper = "IV-D3 (2 position channels per PE group)"
    requires = ("image",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.hw.configs import (
            PES_PER_GROUP,
            POSITION_CHANNELS_PER_GROUP,
        )

        image = ctx.image
        config = image.config
        counts = _groups_per_pe(image)
        if len(counts) != config.num_pes:
            return  # mem.channels reports
        for g in range(config.num_pe_groups):
            base = g * PES_PER_GROUP
            total = sum(counts[base:base + PES_PER_GROUP])
            for p in range(POSITION_CHANNELS_PER_GROUP):
                name = f"g{g}.pos{p}"
                img = image.position_images.get(name)
                if img is None:
                    continue  # mem.channels reports
                if len(img) % 4:
                    yield self.diag(
                        f"position channel {name} holds {len(img)} "
                        "bytes, not a multiple of the 4-byte word",
                        location=Location(channel=name),
                        image_bytes=len(img),
                    )
                    continue
                # Word idx i goes to channel i % P: channel p receives
                # ceil((total - p) / P) words.
                expected_words = (
                    total // POSITION_CHANNELS_PER_GROUP
                    + (1 if p < total % POSITION_CHANNELS_PER_GROUP
                       else 0)
                )
                if len(img) != expected_words * 4:
                    yield self.diag(
                        f"position channel {name} holds "
                        f"{len(img) // 4} words but the round-robin "
                        f"deal of {total} group words gives it "
                        f"{expected_words}",
                        location=Location(channel=name),
                        words=len(img) // 4,
                        expected_words=expected_words,
                    )


@register
class DescriptorSchedule(Rule):
    rule_id = "mem.descriptors"
    kinds = (KIND_MEMORY,)
    title = ("descriptor tables match the deterministic tile -> PE "
             "schedule of the encoding")
    paper = "IV (load units walk the descriptors) / Algorithm 4"
    requires = ("image", "spasm")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.hw.perf_model import assign_tiles

        image = ctx.image
        spasm = ctx.spasm
        config = image.config
        if len(image.descriptors) != config.num_pes:
            return  # mem.channels reports
        if not ctx.structure_ok:
            return
        owner = assign_tiles(spasm.groups_per_tile(), config.num_pes)
        expected: List[List[tuple]] = [
            [] for __ in range(config.num_pes)
        ]
        groups = spasm.groups_per_tile()
        for t in range(spasm.n_tiles):
            expected[int(owner[t])].append(
                (int(spasm.tile_rows[t]), int(spasm.tile_cols[t]),
                 int(groups[t]))
            )
        emitted = 0
        for pe in range(config.num_pes):
            actual = [tuple(int(v) for v in d)
                      for d in image.descriptors[pe]]
            if actual != expected[pe] and emitted < MAX_OCCURRENCES:
                emitted += 1
                yield self.diag(
                    f"PE {pe} descriptor table disagrees with the "
                    f"schedule ({len(actual)} tiles vs "
                    f"{len(expected[pe])} expected)",
                    location=Location(pe=pe),
                    actual_tiles=len(actual),
                    expected_tiles=len(expected[pe]),
                )


@register
class ImageRoundTrip(Rule):
    rule_id = "mem.roundtrip"
    kinds = (KIND_MEMORY,)
    title = ("unpacking the images reproduces every PE's (word, "
             "values) stream of the encoding")
    paper = "IV (lossless channel layout)"
    requires = ("image", "spasm")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.hw.memory_image import _per_pe_streams, unpack_images

        image = ctx.image
        spasm = ctx.spasm
        config = image.config
        if not ctx.structure_ok or not ctx.decodable:
            return
        try:
            pe_words, pe_values = unpack_images(image, k=spasm.k)
        except Exception as exc:  # malformed images break indexing
            yield self.diag(
                f"images do not unpack: {type(exc).__name__}: {exc}",
            )
            return
        __, exp_words, exp_values = _per_pe_streams(spasm, config)
        if len(pe_words) != len(exp_words):
            yield self.diag(
                f"unpacked {len(pe_words)} PE streams, expected "
                f"{len(exp_words)}",
            )
            return
        emitted = 0
        for pe in range(len(exp_words)):
            if emitted >= MAX_OCCURRENCES:
                break
            if pe_words[pe].size != exp_words[pe].size or not (
                np.array_equal(pe_words[pe], exp_words[pe])
            ):
                emitted += 1
                yield self.diag(
                    f"PE {pe} position words differ from the "
                    "encoding's schedule",
                    location=Location(pe=pe),
                )
                continue
            expected32 = exp_values[pe].astype(np.float32)
            if pe_values[pe].shape != expected32.shape or not (
                np.array_equal(pe_values[pe], expected32)
            ):
                emitted += 1
                yield self.diag(
                    f"PE {pe} value payload differs from the "
                    "encoding's schedule (float32 comparison)",
                    location=Location(pe=pe),
                )
