"""Format rules (paper Section III).

These rules check the two-level SPASM structure itself: the tile
directory (row-major stream order, bounds, offsets), the decoded value
payload (first-template overlap rule, nnz conservation, matrix
bounds), the portfolio's coverage obligation, and — when the source
matrix is available — exact decode round-trip equality.
"""

from __future__ import annotations

import functools
from typing import Any, Iterator, Tuple

import numpy as np

from repro.verify.diagnostics import Diagnostic, Location, WARNING
from repro.verify.rules import (
    KIND_OPCODE,
    KIND_SPASM,
    MAX_OCCURRENCES,
    Rule,
    VerifyContext,
    register,
)


@functools.lru_cache(maxsize=16)
def _cached_table(masks: Tuple[int, ...], k: int) -> Any:
    """Per-portfolio decomposition table, cached across verify calls."""
    from repro.core.decompose import DecompositionTable

    return DecompositionTable(list(masks), k=k)


@register
class StructuralIntegrity(Rule):
    rule_id = "fmt.structure"
    kinds = (KIND_SPASM,)
    title = ("tile directory offsets, array shapes and the tile size "
             "are mutually consistent")
    paper = "III (two-level encoding)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        ptr = np.asarray(spasm.tile_ptr)
        if ptr.size != spasm.n_tiles + 1:
            yield self.diag(
                f"tile_ptr has {ptr.size} entries for "
                f"{spasm.n_tiles} tiles (want n_tiles + 1)",
                tile_ptr_size=int(ptr.size),
                n_tiles=spasm.n_tiles,
            )
        elif ptr.size:
            if ptr[0] != 0 or ptr[-1] != spasm.n_groups:
                yield self.diag(
                    f"tile_ptr spans [{int(ptr[0])}, {int(ptr[-1])}], "
                    f"want [0, {spasm.n_groups}]",
                    first=int(ptr[0]),
                    last=int(ptr[-1]),
                    n_groups=spasm.n_groups,
                )
            steps = np.diff(ptr)
            neg = np.flatnonzero(steps < 0)
            for t in neg[:MAX_OCCURRENCES]:
                yield self.diag(
                    "tile_ptr decreases",
                    location=ctx.tile_location(int(t)),
                    count=int(neg.size),
                )
        if spasm.tile_rows.size != spasm.tile_cols.size:
            yield self.diag(
                f"tile coordinate arrays disagree "
                f"({spasm.tile_rows.size} rows vs "
                f"{spasm.tile_cols.size} cols)",
            )
        if spasm.values.shape != (spasm.n_groups, spasm.k):
            yield self.diag(
                f"values shape {spasm.values.shape} != "
                f"({spasm.n_groups}, {spasm.k})",
            )
        try:
            from repro.core.tiling import validate_tile_size

            validate_tile_size(spasm.tile_size, spasm.k)
        except ValueError as exc:
            yield self.diag(str(exc), tile_size=spasm.tile_size)
        if spasm.words.dtype != np.uint32:
            yield self.diag(
                f"position words stored as {spasm.words.dtype}, not "
                "uint32",
                severity=WARNING,
            )


@register
class TileStreamOrder(Rule):
    rule_id = "fmt.tile_order"
    kinds = (KIND_SPASM,)
    title = ("tile directory is in row-major stream order with no "
             "duplicate or empty tiles")
    paper = "III (row-major tile streaming)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if not ctx.structure_ok or spasm.n_tiles == 0:
            return
        n_tile_cols = -(-max(spasm.shape[1], 1) // spasm.tile_size)
        key = (
            spasm.tile_rows.astype(np.int64) * n_tile_cols
            + spasm.tile_cols.astype(np.int64)
        )
        bad = np.flatnonzero(key[1:] <= key[:-1])
        for i in bad[:MAX_OCCURRENCES]:
            t = int(i) + 1
            kind = "duplicates" if key[t] == key[t - 1] else "precedes"
            yield self.diag(
                f"tile {kind} its predecessor in row-major stream "
                "order (an entire tile row must complete before the "
                "next starts)",
                location=ctx.tile_location(t),
                count=int(bad.size),
            )
        empty = np.flatnonzero(np.diff(spasm.tile_ptr) == 0)
        for t in empty[:MAX_OCCURRENCES]:
            yield self.diag(
                "directory lists a tile with zero groups",
                location=ctx.tile_location(int(t)),
                severity=WARNING,
                count=int(empty.size),
            )


@register
class TileBounds(Rule):
    rule_id = "fmt.tile_bounds"
    kinds = (KIND_SPASM,)
    title = "tile coordinates lie inside the tiled matrix extent"
    paper = "III (global composition)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.tile_rows.size == 0:
            return
        n_tile_rows = -(-max(spasm.shape[0], 1) // spasm.tile_size)
        n_tile_cols = -(-max(spasm.shape[1], 1) // spasm.tile_size)
        bad = np.flatnonzero(
            (spasm.tile_rows < 0)
            | (spasm.tile_rows >= n_tile_rows)
            | (spasm.tile_cols < 0)
            | (spasm.tile_cols >= n_tile_cols)
        )
        for t in bad[:MAX_OCCURRENCES]:
            yield self.diag(
                f"tile coordinate "
                f"({int(spasm.tile_rows[t])}, {int(spasm.tile_cols[t])})"
                f" outside the {n_tile_rows}x{n_tile_cols} tile grid",
                location=ctx.tile_location(int(t)),
                grid=(n_tile_rows, n_tile_cols),
                count=int(bad.size),
            )


@register
class OverlapRule(Rule):
    rule_id = "fmt.overlap"
    kinds = (KIND_SPASM,)
    title = ("no matrix cell is carried by more than one group "
             "(first-template overlap rule)")
    paper = "III (overlap rule: later slots are zero padding)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0 or not ctx.decodable:
            return
        rows, cols, vals = ctx.expanded
        nz = np.flatnonzero(vals != 0.0)
        if nz.size == 0:
            return
        stride = int(cols.max()) + 1
        keys = rows[nz].astype(np.int64) * stride + cols[nz]
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        dup = np.flatnonzero(keys_sorted[1:] == keys_sorted[:-1])
        for i in dup[:MAX_OCCURRENCES]:
            slot = int(nz[order[i + 1]])
            first_slot = int(nz[order[i]])
            yield self.diag(
                f"matrix cell ({int(rows[slot])}, {int(cols[slot])}) "
                "is carried non-zero by two groups; overlapping "
                "template cells must be zero padding after the first "
                "template",
                location=ctx.group_location(slot // spasm.k),
                cell=(int(rows[slot]), int(cols[slot])),
                first_group=first_slot // spasm.k,
                count=int(dup.size),
            )


@register
class ValueBounds(Rule):
    rule_id = "fmt.value_bounds"
    kinds = (KIND_SPASM,)
    title = "non-zero values decode to cells inside the matrix shape"
    paper = "III (edge tiles carry only zero padding past the edge)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        if spasm.n_groups == 0 or not ctx.decodable:
            return
        rows, cols, vals = ctx.expanded
        bad = np.flatnonzero(
            (vals != 0.0)
            & ((rows >= spasm.shape[0]) | (cols >= spasm.shape[1]))
        )
        for slot in bad[:MAX_OCCURRENCES]:
            yield self.diag(
                f"non-zero value decodes to "
                f"({int(rows[slot])}, {int(cols[slot])}) outside the "
                f"matrix shape {spasm.shape}",
                location=ctx.group_location(int(slot) // spasm.k),
                cell=(int(rows[slot]), int(cols[slot])),
                count=int(bad.size),
            )


@register
class NnzConservation(Rule):
    rule_id = "fmt.nnz"
    kinds = (KIND_SPASM,)
    title = ("stored non-zero count is conserved against the source "
             "matrix's nnz")
    paper = "III / V-B (padding accounting)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        stored = int(np.count_nonzero(spasm.values))
        if stored > spasm.source_nnz:
            yield self.diag(
                f"{stored} stored non-zero values exceed the "
                f"{spasm.source_nnz} source non-zeros",
                stored=stored,
                source_nnz=spasm.source_nnz,
            )
        elif stored < spasm.source_nnz:
            yield self.diag(
                f"only {stored} of {spasm.source_nnz} source non-zeros "
                "are stored (explicit zeros in the source, or lost "
                "values)",
                severity=WARNING,
                stored=stored,
                source_nnz=spasm.source_nnz,
            )


@register
class PortfolioCoverage(Rule):
    rule_id = "fmt.portfolio"
    kinds = (KIND_SPASM, KIND_OPCODE)
    title = ("portfolio has <= 16 fixed-length templates whose union "
             "covers the k-by-k grid")
    paper = "II-C / V-C (portfolio constraints)"
    requires = ("portfolio",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.core.bitmask import full_mask, popcount
        from repro.core.templates import MAX_TEMPLATES

        portfolio = ctx.portfolio
        k = portfolio.k
        masks = portfolio.masks
        if len(masks) > MAX_TEMPLATES:
            yield self.diag(
                f"{len(masks)} templates exceed the 4-bit t_idx "
                f"address space ({MAX_TEMPLATES})",
                n_templates=len(masks),
            )
        grid = full_mask(k)
        union = 0
        for t, mask in enumerate(masks):
            union |= mask
            if popcount(mask) != k:
                yield self.diag(
                    f"template t_idx={t} has {popcount(mask)} cells; "
                    f"fixed-length templates need exactly {k}",
                    location=Location(t_idx=t),
                    mask=int(mask),
                )
            if mask & ~grid:
                yield self.diag(
                    f"template t_idx={t} leaves the {k}x{k} grid",
                    location=Location(t_idx=t),
                    mask=int(mask),
                )
        if union != grid:
            yield self.diag(
                "portfolio union does not cover the grid; patterns "
                "touching uncovered cells would be undecomposable",
                missing_cells=int(grid & ~union),
            )
        if len(set(masks)) != len(masks):
            yield self.diag("portfolio contains duplicate templates")


@register
class CanonicalDecomposition(Rule):
    rule_id = "fmt.decomposition"
    kinds = (KIND_SPASM,)
    title = ("each submatrix's groups are the canonical minimum-padding"
             " decomposition of its observed pattern")
    paper = "III (Listing 1 decomposition)"
    requires = ("spasm",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.core.bitmask import DEFAULT_K, popcount_array
        from repro.core.format import _template_cell_arrays

        spasm = ctx.spasm
        if spasm.n_groups == 0 or not ctx.decodable:
            return
        if spasm.k > DEFAULT_K:
            # The exhaustive 2^(k*k) table is intractable past k=4.
            return
        fields = ctx.fields
        portfolio = spasm.portfolio
        table = _cached_table(tuple(portfolio.masks), spasm.k)
        k = spasm.k
        cell_r, cell_c = _template_cell_arrays(portfolio, k)
        cell_bit = (cell_r * k + cell_c).astype(np.int64)
        lane_bits = cell_bit[fields["t_idx"]]  # (n_groups, k)
        nz = spasm.values != 0.0
        group_mask = (
            (np.int64(1) << lane_bits) * nz
        ).sum(axis=1)

        spt = max(spasm.tile_size // k, 1)
        subkey = (
            (ctx.tile_of_group * spt + fields["r_idx"]) * spt
            + fields["c_idx"]
        )
        order = np.argsort(subkey, kind="stable")
        sk = subkey[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sk[1:] != sk[:-1]))
        )
        counts = np.diff(np.append(starts, sk.size))
        sub_mask = np.bitwise_or.reduceat(group_mask[order], starts)
        actual_bits = np.bitwise_or.reduceat(
            np.int64(1) << fields["t_idx"][order], starts
        )
        expected_bits = table.subset_array(sub_mask)
        expected_counts = popcount_array(
            np.asarray(expected_bits, dtype=np.int64)
        )
        mismatch = np.flatnonzero(
            (actual_bits != expected_bits) | (counts != expected_counts)
        )
        for i in mismatch[:MAX_OCCURRENCES]:
            g = int(order[starts[i]])
            actual = [
                t for t in range(len(portfolio.masks))
                if int(actual_bits[i]) >> t & 1
            ]
            expected = [
                t for t in range(len(portfolio.masks))
                if int(expected_bits[i]) >> t & 1
            ]
            yield self.diag(
                f"submatrix uses templates {actual} but the canonical "
                f"minimum-padding decomposition of its pattern is "
                f"{expected}",
                location=ctx.group_location(
                    g,
                    r_idx=int(fields["r_idx"][g]),
                    c_idx=int(fields["c_idx"][g]),
                ),
                pattern=int(sub_mask[i]),
                actual=actual,
                expected=expected,
                count=int(mismatch.size),
            )


@register
class RoundTrip(Rule):
    rule_id = "fmt.roundtrip"
    kinds = (KIND_SPASM,)
    title = ("decoding the stream reproduces the source matrix exactly "
             "(only with a source matrix supplied)")
    paper = "III (lossless encoding)"
    requires = ("spasm", "source")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        spasm = ctx.spasm
        source = ctx.source
        if not ctx.decodable:
            return
        if source.shape != spasm.shape:
            yield self.diag(
                f"encoded shape {spasm.shape} != source shape "
                f"{source.shape}",
            )
            return
        if spasm.n_groups == 0:
            if np.count_nonzero(source.vals):
                yield self.diag(
                    "stream is empty but the source matrix has "
                    "non-zeros",
                    source_nnz=int(np.count_nonzero(source.vals)),
                )
            return
        rows, cols, vals = ctx.expanded
        nz = np.flatnonzero(vals != 0.0)
        src_nz = np.flatnonzero(source.vals != 0.0)
        stride = max(
            int(cols.max(initial=0)) + 1,
            int(source.cols.max(initial=0)) + 1,
            spasm.shape[1],
            1,
        )
        dkeys = rows[nz].astype(np.int64) * stride + cols[nz]
        skeys = (
            source.rows[src_nz].astype(np.int64) * stride
            + source.cols[src_nz]
        )
        src_order = np.argsort(skeys, kind="stable")
        skeys_s = skeys[src_order]
        svals_s = source.vals[src_nz][src_order]

        pos = np.searchsorted(skeys_s, dkeys)
        safe = np.minimum(pos, max(skeys_s.size - 1, 0))
        found = (
            (pos < skeys_s.size) & (skeys_s[safe] == dkeys)
            if skeys_s.size
            else np.zeros(dkeys.size, dtype=bool)
        )
        spurious = np.flatnonzero(~found)
        for i in spurious[:MAX_OCCURRENCES]:
            slot = int(nz[i])
            yield self.diag(
                f"decoded non-zero at "
                f"({int(rows[slot])}, {int(cols[slot])}) does not "
                "exist in the source matrix",
                location=ctx.group_location(slot // spasm.k),
                cell=(int(rows[slot]), int(cols[slot])),
                count=int(spurious.size),
            )
        wrong = np.flatnonzero(found & (svals_s[safe] != vals[nz]))
        for i in wrong[:MAX_OCCURRENCES]:
            slot = int(nz[i])
            yield self.diag(
                f"decoded value {vals[slot]!r} at "
                f"({int(rows[slot])}, {int(cols[slot])}) differs from "
                f"the source value {float(svals_s[safe[i]])!r}",
                location=ctx.group_location(slot // spasm.k),
                cell=(int(rows[slot]), int(cols[slot])),
                count=int(wrong.size),
            )

        dkeys_s = np.sort(dkeys)
        pos2 = np.searchsorted(dkeys_s, skeys_s)
        safe2 = np.minimum(pos2, max(dkeys_s.size - 1, 0))
        present = (
            (pos2 < dkeys_s.size) & (dkeys_s[safe2] == skeys_s)
            if dkeys_s.size
            else np.zeros(skeys_s.size, dtype=bool)
        )
        missing = np.flatnonzero(~present)
        for i in missing[:MAX_OCCURRENCES]:
            r = int(skeys_s[i]) // stride
            c = int(skeys_s[i]) % stride
            yield self.diag(
                f"source non-zero at ({r}, {c}) is missing from the "
                "decoded stream",
                location=Location(
                    tile_row=r // spasm.tile_size,
                    tile_col=c // spasm.tile_size,
                ),
                cell=(r, c),
                count=int(missing.size),
            )
