"""Execution-plan rules (the compiled step-⑥ fast-path artifact).

A compiled :class:`~repro.exec.plan.ExecutionPlan` is dispatched with
no per-slot checks at all — the gather and segmented-accumulation
kernels trust the plan arrays completely.  These rules make that trust
checkable: the structural and dtype-policy invariants every dispatch
relies on (``plan.integrity``, delegating to
:meth:`ExecutionPlan.validate` so the guard and the verifier agree by
construction, checksum included), when the source stream is in the
context, that the plan actually belongs to it (``plan.digest``), and
that a plan does not waste bandwidth on wide indices where the compact
int32 layout suffices (``plan.layout``, advisory).  The resilience
layer (:mod:`repro.resilience.guard`) runs the same checks before
dispatch; see ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from typing import Iterator

from repro.verify.diagnostics import WARNING, Diagnostic
from repro.verify.rules import (
    KIND_PLAN,
    Rule,
    VerifyContext,
    register,
)


@register
class PlanIntegrity(Rule):
    rule_id = "plan.integrity"
    kinds = (KIND_PLAN,)
    title = ("plan arrays satisfy every dispatch invariant and match "
             "their build-time checksum")
    paper = "software step ⑥ (compiled execution)"
    requires = ("plan",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        for problem in ctx.plan.validate():
            yield self.diag(problem)


@register
class PlanDigest(Rule):
    rule_id = "plan.digest"
    kinds = (KIND_PLAN,)
    title = ("the plan was compiled from exactly this stream (stream "
             "digest equality)")
    paper = "software step ⑥ (compiled execution)"
    requires = ("plan", "spasm")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.exec.plan import stream_digest

        expected = stream_digest(ctx.spasm)
        if ctx.plan.digest != expected:
            yield self.diag(
                "plan digest does not match the stream it is about to "
                "execute (stale plan or corrupted stream)",
                plan_digest=ctx.plan.digest,
                stream_digest=expected,
            )


@register
class PlanLayout(Rule):
    rule_id = "plan.layout"
    kinds = (KIND_PLAN,)
    severity = WARNING
    title = ("the plan uses the compact int32 index layout whenever "
             "shape and slot count permit it")
    paper = "software step ⑥ (compact plan layouts)"
    requires = ("plan",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        import numpy as np

        from repro.analyze.symbolic import certify_index_width

        plan = ctx.plan
        cert = certify_index_width(
            plan.shape, plan.n_slots, np.dtype(np.int32)
        )
        if cert.compact_sufficient and plan.cols.dtype != np.int32:
            yield self.diag(
                f"plan stores {plan.cols.dtype.name} indices but the "
                f"analyzer certifies the compact layout: {cert.bound()}"
                " — rebuild to halve index bandwidth",
                index_dtype=plan.cols.dtype.name,
                compact_dtype="int32",
                n_slots=plan.n_slots,
                certified_extent=cert.extent,
                certified_capacity=cert.capacity,
                certified_headroom=cert.headroom,
            )


@register
class PlanSlotBudget(Rule):
    rule_id = "plan.slots"
    kinds = (KIND_PLAN,)
    title = ("the plan streams no more slots than the stream stores "
             "and no fewer than the source nnz")
    paper = "software step ⑥ (padding elision)"
    requires = ("plan", "spasm")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        plan = ctx.plan
        spasm = ctx.spasm
        stored = int(spasm.values.size)
        if plan.n_slots > stored:
            yield self.diag(
                f"plan streams {plan.n_slots} slots but the stream "
                f"stores only {stored}",
                plan_slots=plan.n_slots,
                stored_slots=stored,
            )
        nonzero = int((spasm.values != 0.0).sum())
        if plan.n_slots != nonzero:
            yield self.diag(
                f"plan streams {plan.n_slots} slots, stream carries "
                f"{nonzero} non-padding values (padding elision must "
                "be exact)",
                plan_slots=plan.n_slots,
                nonzero_slots=nonzero,
            )
