"""Execution-plan rules (the compiled step-⑥ fast-path artifact).

A compiled :class:`~repro.exec.plan.ExecutionPlan` is dispatched with
no per-slot checks at all — the gather and ``reduceat`` kernels trust
the plan arrays completely.  These rules make that trust checkable:
the structural invariants every dispatch relies on (``plan.integrity``,
delegating to :meth:`ExecutionPlan.validate` so the guard and the
verifier agree by construction, checksum included) and, when the
source stream is in the context, that the plan actually belongs to it
(``plan.digest``).  The resilience layer
(:mod:`repro.resilience.guard`) runs the same checks before dispatch;
see ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from typing import Iterator

from repro.verify.diagnostics import Diagnostic
from repro.verify.rules import (
    KIND_PLAN,
    Rule,
    VerifyContext,
    register,
)


@register
class PlanIntegrity(Rule):
    rule_id = "plan.integrity"
    kinds = (KIND_PLAN,)
    title = ("plan arrays satisfy every dispatch invariant and match "
             "their build-time checksum")
    paper = "software step ⑥ (compiled execution)"
    requires = ("plan",)

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        for problem in ctx.plan.validate():
            yield self.diag(problem)


@register
class PlanDigest(Rule):
    rule_id = "plan.digest"
    kinds = (KIND_PLAN,)
    title = ("the plan was compiled from exactly this stream (stream "
             "digest equality)")
    paper = "software step ⑥ (compiled execution)"
    requires = ("plan", "spasm")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        from repro.exec.plan import stream_digest

        expected = stream_digest(ctx.spasm)
        if ctx.plan.digest != expected:
            yield self.diag(
                "plan digest does not match the stream it is about to "
                "execute (stale plan or corrupted stream)",
                plan_digest=ctx.plan.digest,
                stream_digest=expected,
            )


@register
class PlanSlotBudget(Rule):
    rule_id = "plan.slots"
    kinds = (KIND_PLAN,)
    title = ("the plan streams no more slots than the stream stores "
             "and no fewer than the source nnz")
    paper = "software step ⑥ (padding elision)"
    requires = ("plan", "spasm")

    def check(self, ctx: VerifyContext) -> Iterator[Diagnostic]:
        plan = ctx.plan
        spasm = ctx.spasm
        stored = int(spasm.values.size)
        if plan.n_slots > stored:
            yield self.diag(
                f"plan streams {plan.n_slots} slots but the stream "
                f"stores only {stored}",
                plan_slots=plan.n_slots,
                stored_slots=stored,
            )
        nonzero = int((spasm.values != 0.0).sum())
        if plan.n_slots != nonzero:
            yield self.diag(
                f"plan streams {plan.n_slots} slots, stream carries "
                f"{nonzero} non-padding values (padding elision must "
                "be exact)",
                plan_slots=plan.n_slots,
                nonzero_slots=nonzero,
            )
