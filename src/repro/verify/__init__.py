"""Static invariant checker for SPASM artifacts (no simulation).

``repro.verify`` inspects encoded artifacts — SPASM streams, VALU
opcode tables and packed HBM memory images — against the invariants
the paper's hardware relies on, and reports structured
:class:`Diagnostic` records instead of executing anything.

Quick use::

    from repro.verify import verify_spasm
    report = verify_spasm(spasm, source=coo)
    if not report.ok:
        print(report.render())

or from the command line::

    python -m repro verify artifact.npz --json
"""

from repro.verify.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    Location,
    Report,
    VerificationError,
)
from repro.verify.rules import (
    KIND_ANALYZE,
    KIND_MEMORY,
    KIND_OPCODE,
    KIND_PLAN,
    KIND_SPASM,
    REGISTRY,
    Rule,
    VerifyContext,
    all_rules,
    rules_for,
)
from repro.verify.runner import (
    run_rules,
    verify_analysis,
    verify_file,
    verify_memory_image,
    verify_opcode_table,
    verify_plan,
    verify_spasm,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "Location",
    "Report",
    "VerificationError",
    "KIND_SPASM",
    "KIND_OPCODE",
    "KIND_MEMORY",
    "KIND_PLAN",
    "KIND_ANALYZE",
    "REGISTRY",
    "Rule",
    "VerifyContext",
    "all_rules",
    "rules_for",
    "run_rules",
    "verify_analysis",
    "verify_file",
    "verify_memory_image",
    "verify_opcode_table",
    "verify_plan",
    "verify_spasm",
]
