"""Command-line interface.

::

    python -m repro suite                     # list the Table II workloads
    python -m repro analyze tmt_sym           # pattern histogram + spy plot
    python -m repro analyze --scale 0.2       # symbolic plan proofs, suite
    python -m repro analyze --self            # codebase determinism lint
    python -m repro compile matrix.mtx        # full SPASM pipeline report
    python -m repro storage c-73              # Figure 11 format comparison
    python -m repro compare raefsky3          # throughput vs baselines
    python -m repro verify matrix.spasm.npz   # static invariant check
    python -m repro run tmt_sym --engine plan # timed numeric SpMV runs
    python -m repro backends                  # kernel-backend registry

A positional ``matrix`` argument is either a Table II workload name or
a path to a Matrix Market ``.mtx`` file; ``--scale`` grows/shrinks the
synthetic workloads.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.frequency import top_pattern_report
from repro.analysis.report import format_table
from repro.analysis.spy import spy_with_border
from repro.analysis.storage_compare import spasm_storage_bytes
from repro.baselines import (
    CuSparseRTX3090Model,
    HiSparseModel,
    SERPENS_A16,
    SERPENS_A24,
    SpasmModel,
)
from repro.core import SpasmCompiler, analyze_local_patterns
from repro.matrix import read_matrix_market, storage_report
from repro.matrix.coo import COOMatrix
from repro.synth import WORKLOAD_SUITE, load_workload, workload_names


def load_matrix(spec: str, scale: float) -> COOMatrix:
    """Resolve a matrix argument: workload name or .mtx path."""
    if spec.endswith(".mtx"):
        return read_matrix_market(spec)
    return load_workload(spec, scale=scale)


def cmd_suite(args) -> int:
    rows = [
        [
            s.name, s.domain, f"{s.paper_nnz:.2e}",
            f"{s.paper_density:.2e}", s.pattern_kind,
        ]
        for s in WORKLOAD_SUITE
    ]
    print(format_table(
        ["name", "domain", "paper nnz", "paper density", "pattern kind"],
        rows,
        title="Table II workload suite",
    ))
    return 0


def cmd_analyze(args) -> int:
    """Pattern analysis, symbolic plan proofs, or the self-lint.

    Three modes share the subcommand:

    * ``analyze MATRIX`` — the classic local-pattern histogram report.
    * ``analyze [MATRIX] --proofs`` (or no matrix at all) — compile
      the matrix (default: every synth-suite workload) and prove the
      five plan safety obligations symbolically; any refuted
      obligation exits 1.
    * ``analyze --self`` — run the AST determinism/safety lint over
      ``src/repro`` against the checked-in baseline; any *new*
      finding exits 1.
    """
    if args.self_lint:
        return _analyze_self(args)
    if args.matrix is None or args.proofs:
        return _analyze_proofs(args)
    coo = load_matrix(args.matrix, args.scale)
    print(f"{args.matrix}: shape={coo.shape}, nnz={coo.nnz}, "
          f"density={coo.density:.3e}")
    if not args.no_spy:
        print(spy_with_border(coo))
    histogram = analyze_local_patterns(coo, k=args.pattern_size)
    print()
    print(top_pattern_report(args.matrix, histogram, n=args.top))
    return 0


def _analyze_proofs(args) -> int:
    """Prove the five plan obligations over one or all workloads."""
    import json

    from repro.analyze import analyze_program
    from repro.analyze.symbolic import analysis_reports_to_json

    names = (
        [args.matrix] if args.matrix is not None else workload_names()
    )
    compiler = SpasmCompiler(
        cache_dir=getattr(args, "cache_dir", None),
        jobs=max(1, getattr(args, "jobs", 1)),
        build_plan=True,
    )
    reports = []
    for name in names:
        coo = load_matrix(name, args.scale)
        program = compiler.compile(coo)
        report = analyze_program(program, matrix=name)
        reports.append(report)
        if not args.json:
            print(report.render())
            print()
    payload = analysis_reports_to_json(reports)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        refuted = payload["refuted"]
        verdict = (
            "all proof obligations hold" if payload["ok"]
            else f"{refuted} obligation(s) REFUTED"
        )
        print(f"{len(reports)} matrix(es) analyzed: {verdict}")
    return 0 if payload["ok"] else 1


def _analyze_self(args) -> int:
    """Lint ``src/repro`` against the checked-in baseline."""
    import json

    from repro.analyze import (
        diff_baseline,
        load_baseline,
        self_lint,
        write_baseline,
    )

    findings = self_lint()
    if args.write_baseline:
        path = write_baseline(findings)
        print(f"wrote baseline of {len(findings)} finding(s) to {path}")
        return 0
    baseline = load_baseline()
    new, fixed = diff_baseline(findings, baseline)
    if args.json:
        print(json.dumps({
            "ok": not new,
            "findings": len(findings),
            "baselined": len(findings) - len(new),
            "new": [f.as_dict() for f in new],
            "fixed_baseline_keys": fixed,
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
        if fixed:
            print(f"note: {len(fixed)} baseline finding(s) no longer "
                  "present — shrink the baseline "
                  "(analyze --self --write-baseline):")
            for key in fixed:
                print(f"  {key}")
        print(f"self-lint: {len(findings)} finding(s), "
              f"{len(findings) - len(new)} baselined, {len(new)} new")
    return 1 if new else 0


def make_compiler(args) -> SpasmCompiler:
    """A compiler configured from the shared pipeline CLI flags.

    ``--jobs 0`` (execution auto-sharding) maps to a serial schedule
    sweep — the sweep has no auto heuristic of its own.
    """
    return SpasmCompiler(
        cache_dir=getattr(args, "cache_dir", None),
        jobs=max(1, getattr(args, "jobs", 1)),
        verify=getattr(args, "verify", False),
    )


def write_trace(args, program) -> None:
    """Honor ``--trace FILE``: dump the per-stage trace as JSON."""
    trace_path = getattr(args, "trace", None)
    if trace_path and program.trace is not None:
        with open(trace_path, "w", encoding="utf-8") as fh:
            fh.write(program.trace.to_json() + "\n")


def cmd_compile(args) -> int:
    import json

    coo = load_matrix(args.matrix, args.scale)
    program = make_compiler(args).compile(coo)
    breakdown = program.estimate()
    write_trace(args, program)
    if args.json:
        report = program.report
        payload = {
            "matrix": args.matrix,
            "shape": list(coo.shape),
            "nnz": coo.nnz,
            "portfolio": program.portfolio.name,
            "tile_size": program.tile_size,
            "hardware": program.hw_config.name,
            "groups": program.spasm.n_groups,
            "padding_rate": program.spasm.padding_rate,
            "bytes_per_nnz": program.spasm.bytes_per_nnz(),
            "est_cycles": breakdown.total_cycles,
            "bottleneck": breakdown.bottleneck,
            "est_gflops": program.estimated_gflops(),
            "report_ms": {
                "analysis": report.analysis_ms,
                "selection": report.selection_ms,
                "decomposition": report.decomposition_ms,
                "schedule": report.schedule_ms,
                "total": report.total_ms,
            },
            "trace": program.trace.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"matrix:        {args.matrix} shape={coo.shape} nnz={coo.nnz}")
    print(f"portfolio:     {program.portfolio.name} "
          f"({program.portfolio.description})")
    print(f"tile size:     {program.tile_size}")
    print(f"hardware:      {program.hw_config.describe()}")
    print(f"groups:        {program.spasm.n_groups} "
          f"(padding rate {program.spasm.padding_rate:.2%})")
    print(f"storage:       {program.spasm.bytes_per_nnz():.2f} bytes/nnz")
    print(f"est. cycles:   {breakdown.total_cycles:.0f} "
          f"(bottleneck: {breakdown.bottleneck})")
    print(f"est. speed:    {program.estimated_gflops():.2f} GFLOP/s")
    print("preprocessing: "
          f"analysis {program.report.analysis_ms:.1f} ms, "
          f"selection {program.report.selection_ms:.1f} ms, "
          f"decomposition {program.report.decomposition_ms:.1f} ms, "
          f"schedule {program.report.schedule_ms:.1f} ms")
    if args.cache_dir:
        hits = ", ".join(
            f"{event.name}={event.cache}" for event in program.trace
        )
        print(f"cache:         {hits}")
    return 0


def cmd_storage(args) -> int:
    coo = load_matrix(args.matrix, args.scale)
    spasm_bytes = spasm_storage_bytes(coo)
    report = storage_report(coo, args.matrix, spasm_bytes=spasm_bytes)
    rows = [
        [fmt, report.bytes_by_format[fmt], report.improvement(fmt)]
        for fmt in report.formats
    ]
    print(format_table(
        ["format", "bytes", "improvement vs COO"],
        rows,
        title=f"Storage cost of {args.matrix}",
    ))
    return 0


def cmd_compare(args) -> int:
    coo = load_matrix(args.matrix, args.scale)
    spasm = SpasmModel()
    baselines = [
        HiSparseModel(), SERPENS_A16(), SERPENS_A24(),
        CuSparseRTX3090Model(),
    ]
    spasm_gflops = spasm.gflops(coo)
    rows = [["SPASM", spasm_gflops, 1.0]]
    for model in baselines:
        gflops = model.gflops(coo)
        rows.append([model.name, gflops, spasm_gflops / gflops])
    print(format_table(
        ["platform", "GFLOP/s", "SPASM speedup"],
        rows,
        title=f"Modeled SpMV throughput on {args.matrix}",
    ))
    return 0


def cmd_encode(args) -> int:
    """Compile a matrix and persist the SPASM encoding."""
    from repro.core import save_spasm

    coo = load_matrix(args.matrix, args.scale)
    program = make_compiler(args).compile(coo)
    write_trace(args, program)
    save_spasm(args.output, program.spasm)
    print(f"encoded {args.matrix}: {program.portfolio.name}, "
          f"tile={program.tile_size}, "
          f"{program.spasm.storage_bytes()} bytes, "
          f"padding {program.spasm.padding_rate:.1%}")
    print(f"wrote {args.output} "
          f"(recommended hardware: {program.hw_config.name})")
    return 0


def cmd_spmv(args) -> int:
    """Run one SpMV from a persisted encoding."""
    import numpy as np

    from repro.core import load_spasm
    from repro.hw import DEFAULT_CONFIGS, SpasmAccelerator

    spasm = load_spasm(args.encoding)
    rng = np.random.default_rng(args.seed)
    x = rng.random(spasm.shape[1])
    config = next(
        c for c in DEFAULT_CONFIGS if c.name == args.hardware
    )
    result = SpasmAccelerator(config).run(spasm, x, engine="fast")
    reference = spasm.spmv(x)
    ok = np.allclose(result.y, reference)
    print(f"{args.encoding}: shape={spasm.shape}, "
          f"groups={spasm.n_groups}")
    print(f"simulated on {config.name}: {result.cycles:.0f} cycles, "
          f"{result.gflops:.2f} GFLOP/s, bottleneck {result.bottleneck}")
    print(f"verification vs format semantics: "
          f"{'exact' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def cmd_run(args) -> int:
    """Numerically execute timed SpMV iterations on a matrix.

    ``--engine naive`` re-expands the stream every call (the reference
    execution); ``--engine plan`` compiles the
    :class:`~repro.exec.plan.ExecutionPlan` once and runs the cached
    compact-layout kernel, sharded over ``--jobs`` threads (``0`` =
    the plan's own nnz heuristic) on the kernel backend named by
    ``--backend`` (default ``auto`` negotiates; see
    ``python -m repro backends``).  ``--batch N`` times N queries per
    call through the blocked SpMM engine and reports queries/s.
    Float64 engines are checked **bitwise** against the naive
    reference before timing; ``--precision float32`` opts into the
    compact value layout and is checked to tolerance instead.  Any
    divergence exits 1.
    """
    import json
    import time

    import numpy as np

    coo = load_matrix(args.matrix, args.scale)
    reorder = None
    if args.reorder:
        from repro.core.reorder import best_reordering, reorder_gain

        reorder = best_reordering(coo)
        gain = reorder_gain(coo, reorder)
        coo = reorder.matrix
    # --jobs 0 selects the plan's automatic shard heuristic.
    jobs = args.jobs if args.jobs > 0 else None
    # --backend auto negotiates per plan layout (the default policy).
    backend = (
        None if getattr(args, "backend", "auto") == "auto"
        else args.backend
    )

    if args.precision == "float32" and args.engine != "plan":
        print("error: --precision float32 requires --engine plan "
              "(the guarded and naive engines are float64-exact)",
              file=sys.stderr)
        return 1
    if backend is not None and args.engine == "naive":
        print("error: --backend requires --engine plan or guarded "
              "(the naive engine has no kernel backend)",
              file=sys.stderr)
        return 1
    if args.tuned and args.engine != "plan":
        print("error: --tuned requires --engine plan (the tuned "
              "executor replaces the plan dispatch path)",
              file=sys.stderr)
        return 1
    if args.tuned and (backend is not None
                       or args.precision != "float64"):
        print("error: --tuned conflicts with --backend/--precision "
              "(the persisted record decides both)",
              file=sys.stderr)
        return 1

    tuned_result = None
    executor = None
    if args.tuned:
        from repro.pipeline.cache import ArtifactCache
        from repro.tune import tune_matrix

        tune_cache = (
            ArtifactCache(args.cache_dir) if args.cache_dir else None
        )
        tuned_result = tune_matrix(coo, cache=tune_cache,
                                   seed=args.seed)
        compiler = make_compiler(args)
        compiler.tuned = tuned_result.config
    else:
        compiler = make_compiler(args)
    program = compiler.compile(coo)
    spasm = program.spasm
    write_trace(args, program)
    rng = np.random.default_rng(args.seed)
    x = rng.random(spasm.shape[1])

    precision = args.precision
    if args.tuned:
        tuned_cfg = tuned_result.config
        executor = spasm.apply_tuned(tuned_cfg)
        plan = executor.plan
        precision = tuned_cfg.precision
        jobs = executor.jobs
    elif precision == "float32":
        from repro.exec.plan import ExecutionPlan

        plan = ExecutionPlan.build(spasm, precision="float32")
    else:
        plan = spasm.plan()

    reference = spasm.spmv_naive(x)
    if executor is not None:
        got = executor.spmv(x)
    else:
        got = plan.spmv(x, jobs=jobs, backend=backend)
    if precision == "float32":
        agree = bool(np.allclose(got, reference,
                                 rtol=1e-5, atol=1e-8))
        check_note = "within float32 tolerance of naive"
    else:
        agree = bool(np.array_equal(got, reference))
        check_note = "bitwise equal to naive"
    if not agree:
        print("error: plan and naive engines diverge",
              file=sys.stderr)
        return 1

    guard = None
    if args.engine == "guarded":
        from repro.resilience import ExecutionGuard

        guard = ExecutionGuard(spasm, seed=args.seed, backend=backend)

    if args.batch > 0:
        xs = np.ascontiguousarray(
            rng.random((args.batch, spasm.shape[1]))
        )
        batch_ref = np.stack([spasm.spmv_naive(row) for row in xs])
        if executor is not None:
            def step():
                return executor.spmv_batch(xs)
        elif args.engine == "plan":
            def step():
                return plan.spmv_batch(xs, jobs=jobs, backend=backend)
        elif args.engine == "guarded":
            def step():
                return guard.spmv_batch(xs, jobs=jobs)
        else:
            def step():
                return np.stack(
                    [spasm.spmv_naive(row) for row in xs]
                )
        got_batch = step()
        if precision == "float32":
            batch_ok = bool(np.allclose(got_batch, batch_ref,
                                        rtol=1e-5, atol=1e-8))
        else:
            batch_ok = bool(np.array_equal(got_batch, batch_ref))
        if not batch_ok:
            print("error: batched and per-query engines diverge",
                  file=sys.stderr)
            return 1
    elif executor is not None:
        def step():
            return executor.spmv(x)
    elif args.engine == "plan":
        def step():
            return plan.spmv(x, jobs=jobs, backend=backend)
    elif args.engine == "guarded":
        def step():
            return guard.spmv(x, jobs=jobs)
    else:
        def step():
            return spasm.spmv_naive(x)

    times = []
    for __ in range(args.repeat):
        t0 = time.perf_counter()
        step()
        times.append(time.perf_counter() - t0)
    best = min(times)
    flops = 2 * spasm.source_nnz + spasm.shape[0]

    # The fully resolved configuration, auditable from scripts: what
    # actually executed after every auto heuristic and tuning record
    # had its say.
    if args.engine == "naive":
        backend_name = None
        layout = "float64"
        jobs_eff = 1
    else:
        from repro.exec import resolve_backend

        if executor is not None:
            backend_name = executor.backend_name
            jobs_eff = executor.jobs
        else:
            backend_name = resolve_backend(backend, plan=plan,
                                           op="spmv").name
            jobs_eff = jobs if jobs is not None else plan._auto_jobs()
        layout = f"{plan.cols.dtype.name}/{plan.vals.dtype.name}"
    resolved = {
        "engine": args.engine,
        "backend": backend_name,
        "backend_pinned": backend is not None,
        "layout": layout,
        "jobs": int(jobs_eff),
        "jobs_auto": jobs is None,
        "portfolio": program.portfolio.name,
        "tile_size": program.tile_size,
        "precision": precision,
        "tuned": bool(args.tuned),
    }

    if args.json:
        payload = {
            "matrix": args.matrix,
            "shape": list(spasm.shape),
            "nnz": spasm.source_nnz,
            "resolved": resolved,
            "timing": {
                "best_ms": best * 1e3,
                "repeat": args.repeat,
                "gflops": (args.batch or 1) * flops / best / 1e9,
            },
            "check": {"agree": True, "note": check_note},
        }
        if args.batch > 0:
            payload["timing"]["batch_queries"] = args.batch
            payload["timing"]["qps"] = args.batch / best
        if reorder is not None:
            payload["reorder"] = gain
        if tuned_result is not None:
            payload["tuned"] = tuned_result.config.as_dict()
            payload["tuned_cache_hit"] = tuned_result.cache_hit
        if guard is not None:
            payload["guard_incidents"] = len(guard.log)
        print(json.dumps(payload, indent=2))
        return 0

    jobs_note = (f"auto({jobs_eff})" if jobs is None and not args.tuned
                 else str(jobs_eff))
    print(f"matrix:   {args.matrix} shape={spasm.shape} "
          f"nnz={spasm.source_nnz}")
    if args.engine == "naive":
        print(f"engine:   {args.engine} (jobs={jobs_note})")
    else:
        note = "negotiated" if backend is None else "explicit"
        if args.tuned:
            note = "tuned"
        print(f"engine:   {args.engine} (jobs={jobs_note}, "
              f"backend={backend_name}, {note})")
    if args.tuned:
        cfg = tuned_result.config
        source = "cache" if tuned_result.cache_hit else "fresh search"
        print(f"tuned:    {cfg.layout} portfolio={cfg.portfolio} "
              f"tile={cfg.tile_size} batch_block="
              f"{cfg.batch_block or 'auto'} ({source}, recorded "
              f"{cfg.speedup:.2f}x over default)")
    if reorder is not None:
        print(f"reorder:  {gain['before_bytes_per_nnz']:.2f} -> "
              f"{gain['after_bytes_per_nnz']:.2f} bytes/nnz "
              f"({gain['gain']:.2f}x storage gain; outputs are in "
              "the reordered index space)")
    if args.engine in ("plan", "guarded"):
        print(f"plan:     {plan.describe()} "
              f"(built in {plan.build_ms:.1f} ms)")
    if args.batch > 0:
        qps = args.batch / best
        print(f"timing:   best {best * 1e3:.3f} ms of {args.repeat} "
              f"runs for {args.batch} queries "
              f"({qps:.1f} queries/s, "
              f"{args.batch * flops / best / 1e9:.2f} GFLOP/s)")
    else:
        print(f"timing:   best {best * 1e3:.3f} ms of {args.repeat} "
              f"runs ({flops / best / 1e9:.2f} GFLOP/s)")
    print(f"check:    plan vs naive engines agree ({check_note})")
    if guard is not None:
        incidents = len(guard.log)
        print(f"guard:    {incidents} incident(s) logged")
        if incidents:
            print(guard.log.render())
    return 0


def cmd_tune(args) -> int:
    import json

    from repro.pipeline.cache import ArtifactCache
    from repro.tune import tune_matrix

    coo = load_matrix(args.matrix, args.scale)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    emit = None if args.json else print
    result = tune_matrix(coo, cache=cache, budget=args.budget,
                         force=args.force, repeats=args.repeat,
                         batch_queries=args.batch, seed=args.seed,
                         allow_float32=args.allow_float32, log=emit)
    cfg = result.config
    if args.json:
        payload = {
            "matrix": args.matrix,
            "shape": list(coo.shape),
            "nnz": coo.nnz,
            "persisted": cache is not None,
            **result.as_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    if cache is None:
        source = "not persisted (no --cache-dir)"
    elif result.cache_hit:
        source = "cache hit (use --force to re-search)"
    else:
        source = f"stored in {args.cache_dir}"
    pruned = cfg.candidates_total - cfg.candidates_measured
    print(f"matrix:     {args.matrix} shape={coo.shape} "
          f"nnz={coo.nnz}")
    print(f"record:     {source}")
    print(f"structure:  portfolio={cfg.portfolio} "
          f"tile={cfg.tile_size} "
          f"(bitwise-safe: {cfg.structure_bitwise})")
    print(f"execution:  layout={cfg.layout} backend={cfg.backend} "
          f"jobs={cfg.jobs} "
          f"batch_block={cfg.batch_block or 'auto'}")
    print(f"spmv:       tuned {cfg.spmv_ms:.4f} ms vs default "
          f"{cfg.default_spmv_ms:.4f} ms ({cfg.speedup:.2f}x)")
    print(f"batch:      tuned {cfg.batch_qps:.0f} q/s vs default "
          f"{cfg.default_batch_qps:.0f} q/s")
    print(f"search:     measured {cfg.candidates_measured} of "
          f"{cfg.candidates_total} candidates (model pruned "
          f"{pruned}; {result.wall_ms:.0f} ms wall)")
    return 0


def cmd_backends(args) -> int:
    """List the registered kernel backends and their capabilities.

    One row per backend in negotiation order (priority descending):
    availability (with the missing requirement when soft-unavailable)
    and the declared capability envelope — which index/value dtype
    layouts and which of the three ops (``spmv``/``spmm``/
    ``spmv_batch``) each backend claims.  ``auto`` dispatch picks the
    first *available* backend in this order whose envelope covers the
    plan's layout, so the table is the negotiation policy, printed.
    """
    import json

    from repro.exec import available_backends, registered_backends

    engines = registered_backends()
    ready = {engine.name for engine in available_backends()}
    if args.json:
        payload = []
        for engine in engines:
            caps = engine.capabilities()
            payload.append({
                "name": engine.name,
                "priority": engine.priority,
                "available": engine.name in ready,
                "requires": engine.requires(),
                "capabilities": caps.as_dict(),
            })
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for engine in engines:
        caps = engine.capabilities()
        if engine.name in ready:
            status = "available"
        else:
            status = f"unavailable (needs {engine.requires()})"
        layouts = ", ".join(
            f"{idx}x{val}"
            for idx in caps.index_dtypes for val in caps.value_dtypes
        )
        rows.append([
            engine.name, engine.priority, status,
            layouts, ", ".join(caps.ops),
        ])
    print(format_table(
        ["backend", "priority", "status", "index x value dtypes",
         "ops"],
        rows,
        title="Registered kernel backends (auto negotiates top-down)",
    ))
    return 0


def cmd_verify(args) -> int:
    """Statically verify a SPASM artifact without simulating it."""
    from repro.verify import verify_memory_image, verify_spasm

    if args.artifact.endswith(".npz"):
        from repro.core import load_spasm

        spasm = load_spasm(args.artifact)
        source = None
    else:
        # Workload name or .mtx path: encode on the fly and keep the
        # source so decode equivalence (fmt.roundtrip) is checked too.
        source = load_matrix(args.artifact, args.scale)
        spasm = SpasmCompiler().compile(source).spasm
    report = verify_spasm(spasm, source=source)
    if args.hardware:
        from repro.hw import DEFAULT_CONFIGS
        from repro.hw.memory_image import pack_images

        config = next(
            c for c in DEFAULT_CONFIGS if c.name == args.hardware
        )
        image = pack_images(spasm, config)
        report.extend(verify_memory_image(image, spasm=spasm))
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    failed = bool(report.errors) or (
        args.strict and bool(report.warnings)
    )
    return 1 if failed else 0


def cmd_faults(args) -> int:
    """Run a seeded fault-injection campaign over the guard layer.

    Injects one deterministic fault per trial across every surface
    (stream, value, plan, cache, worker, image), executes through the
    resilience guard, and classifies each outcome.  Any *escaped*
    fault — a silently wrong answer — exits 1; so does a blown
    overhead budget under ``--enforce-overhead``.
    """
    import json

    from repro.resilience import run_campaign
    from repro.resilience.campaign import render_report, write_report

    def progress(line):
        if not args.quiet:
            print(f"  .. {line}", file=sys.stderr)

    report = run_campaign(
        preset=args.campaign,
        seed=args.seed,
        overhead=not args.no_overhead,
        progress=progress,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote campaign report to {args.out}", file=sys.stderr)
    if not report["zero_escapes"]:
        print(
            f"error: {report['totals']['escaped']} fault(s) escaped "
            "detection (silently wrong output)",
            file=sys.stderr,
        )
        return 1
    overhead = report.get("overhead")
    if (
        args.enforce_overhead
        and overhead is not None
        and not overhead["within_budget"]
    ):
        print(
            f"error: guard overhead {overhead['overhead_pct']:.2f}% "
            f"exceeds the {overhead['budget_pct']:.1f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_setup(workloads: str, scale: float, cache_dir,
                 byte_budget_mb, seed: int, admission=None,
                 workers: int = 2):
    """Unstarted server + probe dims for the serve/query commands."""
    from repro.pipeline.cache import ArtifactCache
    from repro.serve import serve_matrices
    from repro.synth import load_workload

    cache = ArtifactCache(cache_dir) if cache_dir else None
    budget = (int(byte_budget_mb * (1 << 20))
              if byte_budget_mb else None)
    matrices = {}
    for item in workloads.split(","):
        name, _, item_scale = item.strip().partition(":")
        eff_scale = float(item_scale) if item_scale else scale
        matrices[f"{name}@{eff_scale:g}"] = load_workload(
            name, eff_scale
        )
    server = serve_matrices(
        matrices, cache=cache, byte_budget=budget,
        admission=admission, workers=workers, seed=seed, start=False,
    )
    ncols = {
        plan_name: int(coo.shape[1])
        for plan_name, coo in matrices.items()
    }
    return server, ncols


def cmd_serve(args) -> int:
    """Stand up the SpMV server and drive seeded mixed-tenant load.

    There is no network listener — the server is the in-process query
    engine of :mod:`repro.serve`; this command exercises it end to
    end (admission, batching, degradation ladder, per-request
    deadlines) and reports sustained QPS, latency percentiles and the
    full health/stats snapshot.  A ``failed`` response exits 1.
    """
    import json

    from repro.serve import (
        AdmissionConfig,
        TenantSpec,
        run_load,
        tenant_probes,
    )

    server, ncols = _serve_setup(
        args.workloads, args.scale, args.cache_dir,
        args.plan_budget_mb, args.seed,
        admission=AdmissionConfig(max_queue_per_plan=args.queue,
                                  max_total=args.max_queued),
        workers=args.workers,
    )
    tenants = [
        TenantSpec(name=f"tenant-{idx}", plan=plan_name,
                   deadline_ms=args.deadline_ms, n_probes=4)
        for idx, plan_name in enumerate(sorted(ncols))
    ]
    with server:
        probes = tenant_probes(tenants, ncols, args.seed)
        report = run_load(server, tenants, probes, args.requests,
                          seed=args.seed + 1)
        stats = server.stats()
        health = server.health()
    summary = report.summary()
    if args.json:
        print(json.dumps(
            {"load": summary, "health": health, "stats": stats},
            indent=2, sort_keys=True,
        ))
    else:
        lat = summary["latency_ms"]
        print(f"served {summary['requests']} requests over "
              f"{len(tenants)} tenants: {summary['counts']}")
        print(f"  qps={summary['qps']:.1f}  p50={lat['p50']:.2f} ms  "
              f"p95={lat['p95']:.2f} ms  p99={lat['p99']:.2f} ms")
        print(f"  health: {health}")
        print(f"  registry: hot_bytes={stats['registry']['hot_bytes']}"
              f" evicted={stats['registry']['evicted_total']}"
              f"  shed={stats['admission']['shed']}")
    return 1 if summary["counts"].get("failed") else 0


def cmd_query(args) -> int:
    """One guarded query through the serving engine.

    Compiles (or cache-loads) the workload, serves a single seeded
    probe vector under the optional deadline, and prints the response
    status, latency and output checksum.  Non-``ok`` responses exit 1.
    """
    import hashlib
    import json

    import numpy as np

    from repro.serve import Deadline

    server, ncols = _serve_setup(
        args.workload, args.scale, args.cache_dir, None, args.seed,
        workers=1,
    )
    (plan_name,) = ncols
    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal(ncols[plan_name])
    deadline = (Deadline.after_ms(args.deadline_ms)
                if args.deadline_ms is not None else None)
    with server:
        response = server.query(plan_name, x, deadline=deadline)
    payload = {
        "plan": plan_name,
        "status": response.status,
        "level": response.level,
        "latency_ms": response.latency_s * 1e3,
        "detail": response.detail,
    }
    if response.ok:
        payload["l2_norm"] = float(np.linalg.norm(response.y))
        payload["sha256"] = hashlib.sha256(
            response.y.tobytes()
        ).hexdigest()[:16]
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        line = (f"{plan_name}: {response.status} "
                f"(level={response.level}, "
                f"{payload['latency_ms']:.2f} ms)")
        if response.ok:
            line += (f" l2={payload['l2_norm']:.6g} "
                     f"sha256={payload['sha256']}")
        else:
            line += f" -- {response.detail}"
        print(line)
    return 0 if response.ok else 1


def cmd_chaos(args) -> int:
    """Chaos-under-load: faults fired at a live server (gate: 0 escapes).

    Runs the :mod:`repro.resilience.chaos` campaign — a live
    :class:`~repro.serve.SpmvServer` under seeded mixed-tenant load
    with stream/value/plan/backend/cache/worker faults injected
    between bursts, every response audited bitwise against pristine
    references.  Any escaped fault (an ``ok`` response with a wrong
    result) exits 1.
    """
    import json

    from repro.resilience import (
        render_chaos_report,
        run_chaos_campaign,
        write_report,
    )

    def progress(line):
        if not args.quiet:
            print(f"  .. {line}", file=sys.stderr)

    report = run_chaos_campaign(
        preset=args.preset, seed=args.seed,
        cache_dir=args.cache_dir, progress=progress,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_chaos_report(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote chaos report to {args.out}", file=sys.stderr)
    if not report["zero_escapes"]:
        totals = report["chaos"]["totals"]
        print(
            f"error: {totals['escaped']} fault(s) escaped the live "
            "serving layer (ok responses with wrong results)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_reproduce(args) -> int:
    """Regenerate the headline evaluation tables in one pass."""
    import pathlib

    from repro.analysis.metrics import (
        bandwidth_efficiency_table,
        energy_table,
        render_throughput,
        throughput_table,
    )
    from repro.analysis.storage_compare import (
        render_storage_comparison,
        suite_storage_reports,
    )
    from repro.synth import load_suite

    names = args.matrices.split(",") if args.matrices else None
    matrices = [
        (spec.name, coo)
        for spec, coo in load_suite(scale=args.scale, names=names)
    ]
    spasm = SpasmModel(cache_dir=args.cache_dir, jobs=args.jobs)
    baselines = [
        HiSparseModel(), SERPENS_A16(), SERPENS_A24(),
        CuSparseRTX3090Model(),
    ]
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    sections = {}
    sections["storage"] = render_storage_comparison(
        suite_storage_reports(matrices)
    )
    throughput = throughput_table(matrices, spasm, baselines)
    sections["throughput"] = render_throughput(
        throughput, [m.name for m in baselines]
    )
    be = bandwidth_efficiency_table(matrices, spasm, baselines)
    be_lines = ["Bandwidth efficiency (min / geomean / max):"]
    for name, s in be["summary"].items():
        be_lines.append(
            f"  vs {name:<12s} {s['min']:.2f}x / {s['geomean']:.2f}x / "
            f"{s['max']:.2f}x"
        )
    sections["bandwidth_efficiency"] = "\n".join(be_lines)
    energy = energy_table(matrices, spasm, baselines)
    sections["energy"] = format_table(
        ["platform", "power (W)", "geomean GFLOP/s", "(GFLOP/s)/W"],
        [
            [r["name"], r["power_w"], r["gflops"], r["efficiency"]]
            for r in energy
        ],
        title="Power and energy efficiency",
    )

    for name, text in sections.items():
        (out_dir / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
        print(text)
        print()
    print(f"wrote {len(sections)} reports to {out_dir}/")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPASM SpMV acceleration framework (HPCA 2025 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("suite", help="list the Table II workload suite")

    def add_matrix_command(name, help_text):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "matrix",
            help=f"workload name ({', '.join(workload_names()[:3])}, ...)"
                 " or a .mtx file path",
        )
        p.add_argument("--scale", type=float, default=1.0,
                       help="synthetic workload scale factor")
        return p

    def add_pipeline_flags(p):
        p.add_argument("--cache-dir", default=None,
                       help="content-addressed artifact cache directory "
                            "(recompiles of unchanged workloads are "
                            "served from disk)")
        p.add_argument("--jobs", type=int, default=1,
                       help="threads for the schedule sweep "
                            "(deterministic; default 1); for 'run' "
                            "also the execution shard count, where 0 "
                            "selects the plan's nnz auto-heuristic")
        return p

    analyze = sub.add_parser(
        "analyze",
        help="local pattern analysis, symbolic plan safety proofs, "
             "or the codebase self-lint",
    )
    analyze.add_argument(
        "matrix", nargs="?", default=None,
        help=f"workload name ({', '.join(workload_names()[:3])}, ...)"
             " or a .mtx file path; omit to prove the whole synth "
             "suite",
    )
    analyze.add_argument("--scale", type=float, default=1.0,
                         help="synthetic workload scale factor")
    analyze.add_argument("--top", type=int, default=8,
                         help="patterns to display")
    analyze.add_argument("--pattern-size", type=int, default=4,
                         help="local pattern size k")
    analyze.add_argument("--no-spy", action="store_true",
                         help="skip the spy plot")
    analyze.add_argument("--proofs", action="store_true",
                         help="prove the six plan safety obligations "
                              "(index width, coverage, shards, image, "
                              "policy, backend) symbolically instead "
                              "of the pattern report; a refuted "
                              "obligation exits 1")
    analyze.add_argument("--self", dest="self_lint",
                         action="store_true",
                         help="run the AST determinism/safety lint "
                              "over src/repro against the checked-in "
                              "baseline; a new finding exits 1")
    analyze.add_argument("--write-baseline", action="store_true",
                         help="with --self: rewrite the baseline to "
                              "the current findings")
    analyze.add_argument("--json", action="store_true",
                         help="emit the proof or lint report as JSON")
    add_pipeline_flags(analyze)

    compile_p = add_matrix_command(
        "compile", "run the full SPASM pipeline"
    )
    add_pipeline_flags(compile_p)
    compile_p.add_argument("--json", action="store_true",
                           help="emit the full result (per-stage trace "
                                "included) as JSON")
    compile_p.add_argument("--trace", default=None, metavar="FILE",
                           help="write the per-stage pipeline trace to "
                                "FILE as JSON")
    compile_p.add_argument("--verify", action="store_true",
                           help="mount the static verifier as a final "
                                "pipeline pass")
    add_matrix_command("storage", "compare storage formats")
    add_matrix_command("compare", "compare modeled platforms")

    encode = add_matrix_command(
        "encode", "compile and persist a SPASM encoding"
    )
    add_pipeline_flags(encode)
    encode.add_argument("--trace", default=None, metavar="FILE",
                        help="write the per-stage pipeline trace to "
                             "FILE as JSON")
    encode.add_argument("--verify", action="store_true",
                        help="mount the static verifier as a final "
                             "pipeline pass")
    encode.add_argument("-o", "--output", default="matrix.spasm.npz",
                        help="output .npz path")

    run = add_matrix_command(
        "run", "timed numeric SpMV runs through a chosen engine"
    )
    add_pipeline_flags(run)
    run.add_argument("--engine", default="plan",
                     choices=["naive", "plan", "guarded"],
                     help="'naive' re-expands the stream per call; "
                          "'plan' runs the compiled execution plan "
                          "(default); 'guarded' adds the resilience "
                          "guard (integrity checks + fallback)")
    run.add_argument("--repeat", type=int, default=5,
                     help="timed iterations (the best is reported)")
    run.add_argument("--batch", type=int, default=0,
                     help="queries per call: 0 runs single-vector "
                          "SpMV (default); N>0 times N queries per "
                          "call through the blocked SpMM engine and "
                          "reports queries/s")
    run.add_argument("--precision", default="float64",
                     choices=["float64", "float32"],
                     help="plan value precision: float64 is bitwise-"
                          "checked against the naive engine "
                          "(default); float32 opts into the compact "
                          "layout, checked to tolerance")
    run.add_argument("--backend", default="auto",
                     help="kernel backend for the plan/guarded "
                          "engines: 'auto' negotiates from the "
                          "registry (default); or a registered name "
                          "(see 'python -m repro backends')")
    run.add_argument("--seed", type=int, default=0,
                     help="seed for the random x vector")
    run.add_argument("--reorder", action="store_true",
                     help="apply the best structural reordering "
                          "(identity / block-signature / degree sort) "
                          "before compiling and report the storage "
                          "gain")
    run.add_argument("--trace", default=None, metavar="FILE",
                     help="write the per-stage pipeline trace to FILE "
                          "as JSON")
    run.add_argument("--tuned", action="store_true",
                     help="execute through a per-matrix tuned "
                          "configuration: loaded from --cache-dir "
                          "when a record exists, searched on the "
                          "fly otherwise (see 'python -m repro tune')")
    run.add_argument("--json", action="store_true",
                     help="emit one JSON payload with the timing and "
                          "a 'resolved' object echoing the fully "
                          "resolved configuration (backend, layout, "
                          "jobs, portfolio)")

    tune = add_matrix_command(
        "tune", "search the per-matrix knob space and persist the "
                "winning configuration"
    )
    tune.add_argument("--cache-dir", default=None,
                      help="artifact cache directory; the winning "
                           "record is persisted here keyed on the "
                           "matrix content digest (omit to search "
                           "without persisting)")
    tune.add_argument("--budget", type=int, default=12,
                      help="maximum measured candidates after the "
                           "analytic-model pruning pass (default 12)")
    tune.add_argument("--force", action="store_true",
                      help="re-search even when a valid cached record "
                           "exists, and overwrite it")
    tune.add_argument("--json", action="store_true",
                      help="emit the tuning record and trial log as "
                           "JSON")
    tune.add_argument("--repeat", type=int, default=3,
                      help="best-of-N repeats per measured candidate")
    tune.add_argument("--batch", type=int, default=8,
                      help="queries per call when timing the batch "
                           "block-width knob")
    tune.add_argument("--seed", type=int, default=0,
                      help="seed for the probe vectors")
    tune.add_argument("--allow-float32", action="store_true",
                      help="let the search consider the float32 value "
                           "layout (tolerance-checked, not bitwise)")

    backends = sub.add_parser(
        "backends",
        help="list the registered kernel backends, their availability "
             "and capability envelopes",
    )
    backends.add_argument("--json", action="store_true",
                          help="emit the backend table as JSON")

    spmv = sub.add_parser(
        "spmv", help="run one simulated SpMV from a saved encoding"
    )
    spmv.add_argument("encoding", help="path to a .npz from 'encode'")
    spmv.add_argument("--hardware", default="SPASM_4_1",
                      choices=["SPASM_4_1", "SPASM_3_4", "SPASM_3_2"])
    spmv.add_argument("--seed", type=int, default=0,
                      help="seed for the random x vector")

    verify = sub.add_parser(
        "verify",
        help="statically check a SPASM artifact against the format, "
             "opcode and memory-image invariants",
    )
    verify.add_argument(
        "artifact",
        help="a .npz encoding from 'encode', a workload name, or a "
             ".mtx path (the latter two are encoded on the fly and "
             "additionally checked for decode equivalence)",
    )
    verify.add_argument("--scale", type=float, default=1.0,
                        help="synthetic workload scale factor")
    verify.add_argument("--hardware", default=None,
                        choices=["SPASM_4_1", "SPASM_3_4", "SPASM_3_2"],
                        help="also pack and verify the HBM memory "
                             "images for this bitstream")
    verify.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    verify.add_argument("--strict", action="store_true",
                        help="treat warnings as errors in the exit "
                             "code")

    faults = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign over the resilience "
             "guard (an escaped fault exits 1)",
    )
    faults.add_argument("--campaign", default="smoke",
                        choices=["smoke", "full"],
                        help="preset: 'smoke' (~56 injections, CI) or "
                             "'full' (220 injections, overhead "
                             "measured at the benchmark scale)")
    faults.add_argument("--seed", type=int, default=0,
                        help="master seed; the campaign is a pure "
                             "function of it")
    faults.add_argument("--json", action="store_true",
                        help="emit the full report as JSON on stdout")
    faults.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    faults.add_argument("--no-overhead", action="store_true",
                        help="skip the clean-path overhead "
                             "measurement")
    faults.add_argument("--enforce-overhead", action="store_true",
                        help="exit 1 when guard overhead exceeds the "
                             "budget")
    faults.add_argument("--quiet", action="store_true",
                        help="suppress per-surface progress lines")

    serve = sub.add_parser(
        "serve",
        help="stand up the in-process SpMV server and drive seeded "
             "mixed-tenant load through it",
    )
    serve.add_argument(
        "--workloads", default="tmt_sym,mip1",
        help="comma-separated workload names, each optionally "
             "'name:scale' (default scale from --scale)",
    )
    serve.add_argument("--scale", type=float, default=0.5,
                       help="default synthetic workload scale")
    serve.add_argument("--requests", type=int, default=200,
                       help="load-generator request count")
    serve.add_argument("--workers", type=int, default=2,
                       help="server worker threads")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline for every tenant")
    serve.add_argument("--queue", type=int, default=64,
                       help="per-plan admission queue bound")
    serve.add_argument("--max-queued", type=int, default=256,
                       help="global admission queue bound")
    serve.add_argument("--plan-budget-mb", type=float, default=None,
                       help="registry hot-plan byte budget (LRU "
                            "eviction above it)")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact cache (plan artifacts + tuned "
                            "records warm from here)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for probes and tenant traffic")
    serve.add_argument("--json", action="store_true",
                       help="emit load/health/stats as JSON")

    query = sub.add_parser(
        "query",
        help="run one guarded query through the serving engine",
    )
    query.add_argument("workload",
                       help="workload name, optionally 'name:scale'")
    query.add_argument("--scale", type=float, default=0.5,
                       help="synthetic workload scale")
    query.add_argument("--seed", type=int, default=0,
                       help="seed for the probe vector")
    query.add_argument("--deadline-ms", type=float, default=None,
                       help="request deadline; an expired request is "
                            "shed, never answered late")
    query.add_argument("--cache-dir", default=None,
                       help="artifact cache for plan/tuned warmup")
    query.add_argument("--json", action="store_true",
                       help="emit the response as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="chaos-under-load campaign against a live server "
             "(an escaped fault exits 1)",
    )
    chaos.add_argument("--preset", default="smoke",
                       choices=["smoke", "full"],
                       help="campaign preset (smoke: CI gate; full: "
                            "more tenants, waves and bursts)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="master seed; the campaign is a pure "
                            "function of it")
    chaos.add_argument("--cache-dir", default=None,
                       help="cache directory to corrupt (default: a "
                            "throwaway temp dir)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the full report as JSON on stdout")
    chaos.add_argument("--out", default=None, metavar="FILE",
                       help="also write the JSON report to FILE")
    chaos.add_argument("--quiet", action="store_true",
                       help="suppress per-wave progress lines")

    reproduce = sub.add_parser(
        "reproduce",
        help="regenerate the headline evaluation tables in one pass",
    )
    reproduce.add_argument("--out", default="reproduction",
                           help="output directory for the reports")
    reproduce.add_argument("--scale", type=float, default=1.0,
                           help="synthetic workload scale factor")
    reproduce.add_argument(
        "--matrices", default=None,
        help="comma-separated workload subset (default: all 20)",
    )
    add_pipeline_flags(reproduce)
    return parser


COMMANDS = {
    "suite": cmd_suite,
    "analyze": cmd_analyze,
    "compile": cmd_compile,
    "storage": cmd_storage,
    "compare": cmd_compare,
    "encode": cmd_encode,
    "run": cmd_run,
    "tune": cmd_tune,
    "backends": cmd_backends,
    "spmv": cmd_spmv,
    "verify": cmd_verify,
    "faults": cmd_faults,
    "serve": cmd_serve,
    "query": cmd_query,
    "chaos": cmd_chaos,
    "reproduce": cmd_reproduce,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Every anticipated failure (unknown workload, unreadable file,
    malformed artifact, invariant violation) exits 1 with the message
    on stderr; nothing is swallowed into a 0 exit.
    """
    import zipfile

    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (OSError, KeyError, ValueError,
            zipfile.BadZipFile) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
