"""SPASM — a hardware-software design framework for SpMV acceleration
with a flexible access pattern portfolio.

Reproduction of the HPCA 2025 paper.  The public API re-exports the most
commonly used entry points; see the subpackages for the full surface:

* :mod:`repro.core` — pattern analysis, template portfolios, the SPASM
  data format and the workload scheduler;
* :mod:`repro.matrix` — the sparse matrix substrate (COO/CSR/CSC/BSR/
  ELL/DIA) with conversions and storage cost models;
* :mod:`repro.hw` — the SPASM accelerator model (VALU/PE/HBM functional
  simulator and the analytic performance model);
* :mod:`repro.baselines` — HiSparse, Serpens and cuSPARSE-on-RTX3090
  baseline models;
* :mod:`repro.synth` — synthetic workload generators and the Table II
  matrix suite;
* :mod:`repro.analysis` — metrics and report rendering for the paper's
  tables and figures;
* :mod:`repro.verify` — static invariant checker over encoded
  artifacts (streams, opcode tables, memory images).
"""

from repro.matrix import COOMatrix, CSRMatrix, coo_to_csr, from_dense
from repro.core import (
    analyze_local_patterns,
    candidate_portfolios,
    build_portfolio,
    encode_spasm,
    select_portfolio,
    explore_schedule,
    DecompositionTable,
    SpasmCompiler,
    SpasmMatrix,
)
from repro.hw import (
    SpasmAccelerator,
    SPASM_4_1,
    SPASM_3_4,
    SPASM_3_2,
    DEFAULT_CONFIGS,
)
from repro.verify import (
    Report,
    VerificationError,
    verify_memory_image,
    verify_opcode_table,
    verify_spasm,
)

__version__ = "1.0.0"

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "coo_to_csr",
    "from_dense",
    "analyze_local_patterns",
    "candidate_portfolios",
    "build_portfolio",
    "encode_spasm",
    "select_portfolio",
    "explore_schedule",
    "DecompositionTable",
    "SpasmCompiler",
    "SpasmMatrix",
    "SpasmAccelerator",
    "SPASM_4_1",
    "SPASM_3_4",
    "SPASM_3_2",
    "DEFAULT_CONFIGS",
    "Report",
    "VerificationError",
    "verify_memory_image",
    "verify_opcode_table",
    "verify_spasm",
    "__version__",
]
