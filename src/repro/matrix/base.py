"""Shared base class and helpers for the sparse matrix formats."""

from __future__ import annotations

import abc

import numpy as np


class MatrixShapeError(ValueError):
    """Raised when indices fall outside the declared matrix shape or when
    operand shapes are incompatible."""


class SparseMatrix(abc.ABC):
    """Abstract base class of every sparse format in :mod:`repro.matrix`.

    Concrete formats store their payload differently but share a small
    interface: a ``shape``, an ``nnz`` count, a dense round-trip and a
    reference ``spmv``.  The reference SpMV implementations are written
    directly against each format's native layout so they double as
    executable documentation of the format semantics.
    """

    #: (rows, cols) of the logical matrix.
    shape: tuple

    @property
    def nrows(self) -> int:
        """Number of rows of the logical matrix."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns of the logical matrix."""
        return self.shape[1]

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored non-zero entries."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialize the matrix as a dense ``float64`` ndarray."""

    @abc.abstractmethod
    def spmv(self, x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
        """Compute ``y = A @ x + y`` (Equation 1 of the paper).

        Parameters
        ----------
        x:
            Dense input vector of length ``ncols``.
        y:
            Optional dense accumulator of length ``nrows``.  When omitted a
            zero vector is used, so the result equals ``A @ x``.
        """

    @property
    def density(self) -> float:
        """Fraction of cells that hold an explicit non-zero."""
        cells = self.nrows * self.ncols
        if cells == 0:
            return 0.0
        return self.nnz / cells

    def check_vector(self, x: np.ndarray) -> np.ndarray:
        """Validate and coerce an SpMV input vector."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1 or x.shape[0] != self.ncols:
            raise MatrixShapeError(
                f"input vector of length {x.shape} incompatible with "
                f"matrix of shape {self.shape}"
            )
        return x

    def init_output(self, y: np.ndarray) -> np.ndarray:
        """Validate an SpMV accumulator, or build a fresh zero vector."""
        if y is None:
            return np.zeros(self.nrows, dtype=np.float64)
        y = np.array(y, dtype=np.float64)
        if y.ndim != 1 or y.shape[0] != self.nrows:
            raise MatrixShapeError(
                f"output vector of length {y.shape} incompatible with "
                f"matrix of shape {self.shape}"
            )
        return y

    def __repr__(self) -> str:
        name = type(self).__name__
        return f"{name}(shape={self.shape}, nnz={self.nnz})"


def validate_shape(shape) -> tuple:
    """Validate a (rows, cols) shape tuple."""
    if len(shape) != 2:
        raise MatrixShapeError(f"shape must be 2-D, got {shape!r}")
    nrows, ncols = int(shape[0]), int(shape[1])
    if nrows < 0 or ncols < 0:
        raise MatrixShapeError(f"shape must be non-negative, got {shape!r}")
    return (nrows, ncols)
