"""Compressed Sparse Row (CSR) format.

CSR compresses the row coordinate of COO into a row-pointer array, saving
roughly one 32-bit index per non-zero for matrices with more non-zeros than
rows — the source of the ~1.46x average improvement over COO in Table VI.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.base import MatrixShapeError, SparseMatrix, validate_shape


class CSRMatrix(SparseMatrix):
    """Compressed sparse row matrix.

    Parameters
    ----------
    indptr:
        ``nrows + 1`` row pointers; row ``i`` owns entries
        ``indptr[i]:indptr[i+1]``.
    indices:
        Column index of each stored entry, sorted within each row.
    data:
        Stored values, parallel to ``indices``.
    shape:
        Logical ``(nrows, ncols)``.
    """

    def __init__(self, indptr, indices, data, shape):
        self.shape = validate_shape(shape)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if indptr.ndim != 1 or indptr.size != self.shape[0] + 1:
            raise MatrixShapeError(
                f"indptr must have nrows+1={self.shape[0] + 1} entries, "
                f"got {indptr.size}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise MatrixShapeError("indptr must start at 0 and be monotone")
        if indices.shape != data.shape or indices.ndim != 1:
            raise MatrixShapeError("indices and data must be equal-length 1-D")
        if indptr[-1] != indices.size:
            raise MatrixShapeError("indptr[-1] must equal len(indices)")
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.shape[1]
        ):
            raise MatrixShapeError("column indices out of range")
        self.indptr = indptr
        self.indices = indices
        self.data = data

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def row(self, i: int) -> tuple:
        """Return ``(cols, vals)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), self.row_lengths()
        )
        dense[rows, self.indices] = self.data
        return dense

    def spmv(self, x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
        x = self.check_vector(x)
        y = self.init_output(y)
        products = self.data * x[self.indices]
        # Segment-sum each row's products via reduceat over non-empty rows.
        lengths = self.row_lengths()
        nonempty = np.nonzero(lengths)[0]
        if nonempty.size:
            starts = self.indptr[nonempty]
            y[nonempty] += np.add.reduceat(products, starts)
        return y

    def storage_bytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Paper accounting: row pointers + one column index and one value
        per non-zero."""
        return (self.shape[0] + 1) * index_bytes + self.nnz * (
            index_bytes + value_bytes
        )
