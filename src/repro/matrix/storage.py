"""Storage-cost accounting used in the Figure 11 / Table VI comparison.

The paper's accounting rules (Section V-D):

* indices in COO, CSR and BSR are 32-bit ints, values are 32-bit floats;
* BSR uses 2x2 blocks;
* the HiSparse and Serpens formats use a 2-level tiling scheme whose
  first-level tile encoding is ignored as negligible; at the second level
  they pack one value and one 32-bit index word per non-zero (8 bytes),
  which yields their constant 1.50x improvement over COO's 12 bytes;
* the SPASM format cost is computed by :mod:`repro.core.format` and passed
  in by the caller.
"""

from __future__ import annotations

import dataclasses

from repro.matrix.convert import coo_to_bsr, coo_to_csr, coo_to_dia, coo_to_ell
from repro.matrix.coo import COOMatrix

#: Bytes per index / value under the paper's accounting.
INDEX_BYTES = 4
VALUE_BYTES = 4


def coo_bytes(coo: COOMatrix) -> int:
    """COO cost: 12 bytes per non-zero."""
    return coo.storage_bytes(INDEX_BYTES, VALUE_BYTES)


def csr_bytes(coo: COOMatrix) -> int:
    """CSR cost: 8 bytes per non-zero + 4 bytes per row pointer."""
    return coo_to_csr(coo).storage_bytes(INDEX_BYTES, VALUE_BYTES)


def bsr_bytes(coo: COOMatrix, blockshape=(2, 2)) -> int:
    """BSR cost with the paper's 2x2 blocks (padding included)."""
    return coo_to_bsr(coo, blockshape).storage_bytes(INDEX_BYTES, VALUE_BYTES)


def ell_bytes(coo: COOMatrix) -> int:
    """ELL cost (padding to the max row length included)."""
    return coo_to_ell(coo).storage_bytes(INDEX_BYTES, VALUE_BYTES)


def dia_bytes(coo: COOMatrix) -> int:
    """DIA cost (full stripe per occupied diagonal)."""
    return coo_to_dia(coo).storage_bytes(INDEX_BYTES, VALUE_BYTES)


def hisparse_serpens_bytes(coo: COOMatrix) -> int:
    """HiSparse/Serpens packed format: 8 bytes per non-zero.

    Both accelerators stream (value, packed-index) pairs; the paper treats
    their storage cost as identical and reports a constant 1.50x
    improvement over COO, which 8 bytes/nnz reproduces exactly.
    """
    return coo.nnz * (INDEX_BYTES + VALUE_BYTES)


#: Name -> cost function for the formats that need no extra parameters.
FORMAT_COSTS = {
    "COO": coo_bytes,
    "CSR": csr_bytes,
    "BSR": bsr_bytes,
    "ELL": ell_bytes,
    "DIA": dia_bytes,
    "HiSparse & Serpens": hisparse_serpens_bytes,
}


@dataclasses.dataclass(frozen=True)
class StorageReport:
    """Storage cost of one matrix under every compared format.

    ``improvement(fmt)`` is the Table VI metric: COO bytes divided by the
    format's bytes (higher is better).
    """

    name: str
    bytes_by_format: dict

    def improvement(self, fmt: str) -> float:
        """COO-normalized improvement factor of ``fmt`` (higher is better)."""
        return self.bytes_by_format["COO"] / self.bytes_by_format[fmt]

    @property
    def formats(self) -> list:
        """Formats present in this report, COO first."""
        names = list(self.bytes_by_format)
        names.sort(key=lambda n: (n != "COO", n))
        return names


def storage_cost(coo: COOMatrix, fmt: str) -> int:
    """Storage cost in bytes of ``coo`` re-encoded as ``fmt``."""
    try:
        cost_fn = FORMAT_COSTS[fmt]
    except KeyError:
        raise KeyError(
            f"unknown format {fmt!r}; choose from {sorted(FORMAT_COSTS)}"
        ) from None
    return cost_fn(coo)


def storage_report(coo: COOMatrix, name: str = "", spasm_bytes=None,
                   formats=None) -> StorageReport:
    """Build a :class:`StorageReport` for the requested formats.

    Parameters
    ----------
    coo:
        The matrix under test.
    name:
        Label used in printed tables.
    spasm_bytes:
        Pre-computed SPASM format cost (from
        :func:`repro.core.format.encode_spasm`), added as the ``SPASM``
        entry when provided.
    formats:
        Iterable of format names; defaults to the paper's comparison set.
    """
    if formats is None:
        formats = ("COO", "CSR", "BSR", "HiSparse & Serpens")
    costs = {fmt: storage_cost(coo, fmt) for fmt in formats}
    if spasm_bytes is not None:
        costs["SPASM"] = int(spasm_bytes)
    return StorageReport(name=name, bytes_by_format=costs)
