"""Coordinate (COO) sparse matrix format.

COO is the paper's storage baseline (Table VI normalizes every format to
COO).  Each non-zero is stored as an ``(row, col, value)`` triple; with
32-bit indices and 32-bit floats this costs 12 bytes per non-zero.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.base import MatrixShapeError, SparseMatrix, validate_shape


class COOMatrix(SparseMatrix):
    """Coordinate-format sparse matrix.

    Parameters
    ----------
    rows, cols:
        Integer arrays of equal length holding the coordinates of each
        stored entry.
    vals:
        Float array of the stored values.
    shape:
        Logical ``(nrows, ncols)``; inferred from the coordinates when
        omitted.
    dedup:
        When true (default), duplicate coordinates are summed and entries
        are sorted into row-major order, which most conversions rely on.
    """

    def __init__(self, rows, cols, vals, shape=None, dedup: bool = True):
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise MatrixShapeError(
                "rows, cols and vals must be 1-D arrays of equal length"
            )
        if shape is None:
            nrows = int(rows.max()) + 1 if rows.size else 0
            ncols = int(cols.max()) + 1 if cols.size else 0
            shape = (nrows, ncols)
        self.shape = validate_shape(shape)
        if rows.size:
            if rows.min() < 0 or cols.min() < 0:
                raise MatrixShapeError("negative coordinates are not allowed")
            if rows.max() >= self.shape[0] or cols.max() >= self.shape[1]:
                raise MatrixShapeError(
                    f"coordinates exceed declared shape {self.shape}"
                )
        self.rows = rows
        self.cols = cols
        self.vals = vals
        if dedup:
            self._sum_duplicates()

    def _sum_duplicates(self) -> None:
        """Sort entries row-major and sum entries at equal coordinates."""
        if self.rows.size == 0:
            return
        keys = self.rows * self.shape[1] + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.vals[order]
        unique_keys, start = np.unique(keys, return_index=True)
        summed = np.add.reduceat(vals, start)
        self.rows = (unique_keys // self.shape[1]).astype(np.int64)
        self.cols = (unique_keys % self.shape[1]).astype(np.int64)
        self.vals = summed

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def prune(self) -> "COOMatrix":
        """Return a copy without explicitly stored zeros."""
        keep = self.vals != 0.0
        return COOMatrix(
            self.rows[keep], self.cols[keep], self.vals[keep], self.shape
        )

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    def spmv(self, x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
        x = self.check_vector(x)
        y = self.init_output(y)
        np.add.at(y, self.rows, self.vals * x[self.cols])
        return y

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (entries re-sorted row-major)."""
        return COOMatrix(
            self.cols, self.rows, self.vals, (self.shape[1], self.shape[0])
        )

    def scaled(self, alpha: float) -> "COOMatrix":
        """Return ``alpha * A`` as a new matrix."""
        return COOMatrix(self.rows, self.cols, self.vals * alpha, self.shape)

    def storage_bytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Paper accounting: one row index, one column index and one value
        per non-zero."""
        return self.nnz * (2 * index_bytes + value_bytes)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense array, dropping zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise MatrixShapeError("dense input must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    def __eq__(self, other) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
            and np.array_equal(self.vals, other.vals)
        )

    __hash__ = None
