"""ELLPACK (ELL) format.

ELL pads every row to the maximum row length, producing two dense
``nrows x width`` arrays (column indices and values).  It suits banded and
diagonal matrices (Table I) and vector machines, but a single long row
inflates the whole matrix.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.base import MatrixShapeError, SparseMatrix, validate_shape

#: Column index used to mark padding slots.
ELL_PAD = -1


class ELLMatrix(SparseMatrix):
    """ELLPACK matrix with ``-1``-marked padding slots.

    Parameters
    ----------
    col_idx:
        ``(nrows, width)`` int array; ``ELL_PAD`` marks padding.
    values:
        ``(nrows, width)`` float array; padding slots hold 0.
    shape:
        Logical ``(nrows, ncols)``.
    """

    def __init__(self, col_idx, values, shape):
        self.shape = validate_shape(shape)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if col_idx.ndim != 2 or col_idx.shape != values.shape:
            raise MatrixShapeError(
                "col_idx and values must be equal-shape 2-D arrays"
            )
        if col_idx.shape[0] != self.shape[0]:
            raise MatrixShapeError(
                f"expected {self.shape[0]} rows, got {col_idx.shape[0]}"
            )
        valid = col_idx != ELL_PAD
        if valid.any() and (
            col_idx[valid].min() < 0 or col_idx[valid].max() >= self.shape[1]
        ):
            raise MatrixShapeError("column indices out of range")
        if np.any(values[~valid] != 0.0):
            raise MatrixShapeError("padding slots must hold zero values")
        self.col_idx = col_idx
        self.values = values

    @property
    def width(self) -> int:
        """Padded row width (maximum row length of the source matrix)."""
        return int(self.col_idx.shape[1])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.col_idx != ELL_PAD))

    @property
    def stored_values(self) -> int:
        """Number of stored slots including padding."""
        return int(self.col_idx.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        rows, slots = np.nonzero(self.col_idx != ELL_PAD)
        dense[rows, self.col_idx[rows, slots]] = self.values[rows, slots]
        return dense

    def spmv(self, x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
        x = self.check_vector(x)
        y = self.init_output(y)
        if self.width == 0:
            return y
        safe_cols = np.where(self.col_idx == ELL_PAD, 0, self.col_idx)
        gathered = x[safe_cols]
        gathered[self.col_idx == ELL_PAD] = 0.0
        y += (self.values * gathered).sum(axis=1)
        return y

    def storage_bytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """One index and one value per slot, padding included."""
        return self.stored_values * (index_bytes + value_bytes)
