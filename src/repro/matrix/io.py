"""Minimal Matrix Market (.mtx) reader/writer.

Supports the ``matrix coordinate`` container with ``real``, ``integer`` or
``pattern`` fields and ``general`` or ``symmetric`` symmetry — enough to
load SuiteSparse matrices when they are available and to persist the
synthetic workload suite.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.coo import COOMatrix


class MatrixMarketError(ValueError):
    """Raised on malformed Matrix Market input."""


def read_matrix_market(path) -> COOMatrix:
    """Read a Matrix Market coordinate file into a :class:`COOMatrix`."""
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise MatrixMarketError("missing %%MatrixMarket banner")
        parts = header.split()
        if len(parts) < 5 or parts[1] != "matrix":
            raise MatrixMarketError(f"unsupported banner: {header.strip()}")
        layout, field, symmetry = parts[2], parts[3], parts[4]
        if layout != "coordinate":
            raise MatrixMarketError(f"unsupported layout {layout!r}")
        if field not in ("real", "integer", "pattern"):
            raise MatrixMarketError(f"unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        if len(dims) != 3:
            raise MatrixMarketError(f"bad size line: {line.strip()}")
        nrows, ncols, nnz = (int(v) for v in dims)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            entry = handle.readline().split()
            if len(entry) < 2:
                raise MatrixMarketError(f"truncated entry at line {k}")
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
            vals[k] = float(entry[2]) if field != "pattern" else 1.0

    if symmetry == "symmetric":
        off_diag = rows != cols
        rows, cols, vals = (
            np.concatenate([rows, cols[off_diag]]),
            np.concatenate([cols, rows[off_diag]]),
            np.concatenate([vals, vals[off_diag]]),
        )
    return COOMatrix(rows, cols, vals, (nrows, ncols))


def write_matrix_market(path, coo: COOMatrix) -> None:
    """Write a :class:`COOMatrix` as a general real coordinate file."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.vals):
            handle.write(f"{r + 1} {c + 1} {float(v)!r}\n")
