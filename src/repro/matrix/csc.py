"""Compressed Sparse Column (CSC) format — the column-major dual of CSR."""

from __future__ import annotations

import numpy as np

from repro.matrix.base import MatrixShapeError, SparseMatrix, validate_shape


class CSCMatrix(SparseMatrix):
    """Compressed sparse column matrix.

    Parameters
    ----------
    indptr:
        ``ncols + 1`` column pointers; column ``j`` owns entries
        ``indptr[j]:indptr[j+1]``.
    indices:
        Row index of each stored entry, sorted within each column.
    data:
        Stored values, parallel to ``indices``.
    shape:
        Logical ``(nrows, ncols)``.
    """

    def __init__(self, indptr, indices, data, shape):
        self.shape = validate_shape(shape)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if indptr.ndim != 1 or indptr.size != self.shape[1] + 1:
            raise MatrixShapeError(
                f"indptr must have ncols+1={self.shape[1] + 1} entries, "
                f"got {indptr.size}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise MatrixShapeError("indptr must start at 0 and be monotone")
        if indices.shape != data.shape or indices.ndim != 1:
            raise MatrixShapeError("indices and data must be equal-length 1-D")
        if indptr[-1] != indices.size:
            raise MatrixShapeError("indptr[-1] must equal len(indices)")
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.shape[0]
        ):
            raise MatrixShapeError("row indices out of range")
        self.indptr = indptr
        self.indices = indices
        self.data = data

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def col(self, j: int) -> tuple:
        """Return ``(rows, vals)`` views of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_lengths(self) -> np.ndarray:
        """Number of stored entries per column."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(
            np.arange(self.shape[1], dtype=np.int64), self.col_lengths()
        )
        dense[self.indices, cols] = self.data
        return dense

    def spmv(self, x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
        x = self.check_vector(x)
        y = self.init_output(y)
        cols = np.repeat(
            np.arange(self.shape[1], dtype=np.int64), self.col_lengths()
        )
        np.add.at(y, self.indices, self.data * x[cols])
        return y

    def storage_bytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Column pointers + one row index and one value per non-zero."""
        return (self.shape[1] + 1) * index_bytes + self.nnz * (
            index_bytes + value_bytes
        )
