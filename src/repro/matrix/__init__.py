"""Sparse matrix substrate implemented from scratch on top of numpy.

This package provides the classic sparse storage formats the paper compares
against (Table I): COO, CSR, CSC, BSR, ELL and DIA, together with format
conversions, a reference SpMV for each format, Matrix Market I/O and the
storage-cost accounting used in the Figure 11 / Table VI comparison.
"""

from repro.matrix.base import SparseMatrix, MatrixShapeError
from repro.matrix.coo import COOMatrix
from repro.matrix.csr import CSRMatrix
from repro.matrix.csc import CSCMatrix
from repro.matrix.bsr import BSRMatrix
from repro.matrix.ell import ELLMatrix
from repro.matrix.dia import DIAMatrix
from repro.matrix.convert import (
    coo_to_csr,
    coo_to_csc,
    csr_to_coo,
    csc_to_coo,
    coo_to_bsr,
    coo_to_ell,
    coo_to_dia,
    from_dense,
)
from repro.matrix.storage import (
    StorageReport,
    storage_cost,
    storage_report,
    FORMAT_COSTS,
)
from repro.matrix.io import read_matrix_market, write_matrix_market

__all__ = [
    "SparseMatrix",
    "MatrixShapeError",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "BSRMatrix",
    "ELLMatrix",
    "DIAMatrix",
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_coo",
    "csc_to_coo",
    "coo_to_bsr",
    "coo_to_ell",
    "coo_to_dia",
    "from_dense",
    "StorageReport",
    "storage_cost",
    "storage_report",
    "FORMAT_COSTS",
    "read_matrix_market",
    "write_matrix_market",
]
