"""Conversions between the sparse formats.

All conversions route through row-major sorted COO, which every
constructor normalizes to, so round trips are exact.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.base import MatrixShapeError
from repro.matrix.bsr import BSRMatrix
from repro.matrix.coo import COOMatrix
from repro.matrix.csc import CSCMatrix
from repro.matrix.csr import CSRMatrix
from repro.matrix.dia import DIAMatrix
from repro.matrix.ell import ELL_PAD, ELLMatrix


def from_dense(dense: np.ndarray) -> COOMatrix:
    """Build a COO matrix from a dense array, dropping zeros."""
    return COOMatrix.from_dense(dense)


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Convert COO (assumed deduplicated) to CSR."""
    counts = np.bincount(coo.rows, minlength=coo.shape[0])
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return CSRMatrix(indptr, coo.cols, coo.vals, coo.shape)


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Convert CSR back to row-major COO."""
    rows = np.repeat(
        np.arange(csr.shape[0], dtype=np.int64), csr.row_lengths()
    )
    return COOMatrix(rows, csr.indices, csr.data, csr.shape)


def coo_to_csc(coo: COOMatrix) -> CSCMatrix:
    """Convert COO to CSC by sorting column-major."""
    order = np.argsort(coo.cols * coo.shape[0] + coo.rows, kind="stable")
    counts = np.bincount(coo.cols, minlength=coo.shape[1])
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return CSCMatrix(indptr, coo.rows[order], coo.vals[order], coo.shape)


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    """Convert CSC back to row-major COO."""
    cols = np.repeat(
        np.arange(csc.shape[1], dtype=np.int64), csc.col_lengths()
    )
    return COOMatrix(csc.indices, cols, csc.data, csc.shape)


def coo_to_bsr(coo: COOMatrix, blockshape=(2, 2)) -> BSRMatrix:
    """Convert COO to BSR with the given block shape.

    The logical shape is padded up to a multiple of the block shape (the
    paper's comparison implicitly does the same when it applies 2x2 BSR to
    arbitrary matrices).
    """
    br, bc = int(blockshape[0]), int(blockshape[1])
    if br <= 0 or bc <= 0:
        raise MatrixShapeError("block dimensions must be positive")
    nrows = -(-coo.shape[0] // br) * br
    ncols = -(-coo.shape[1] // bc) * bc
    nblockrows, nblockcols = nrows // br, ncols // bc

    brow = coo.rows // br
    bcol = coo.cols // bc
    keys = brow * nblockcols + bcol
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    unique_keys, block_of_entry = np.unique(keys_sorted, return_inverse=True)

    nblocks = unique_keys.size
    blocks = np.zeros((nblocks, br, bc), dtype=np.float64)
    rr = (coo.rows[order] % br).astype(np.int64)
    cc = (coo.cols[order] % bc).astype(np.int64)
    blocks[block_of_entry, rr, cc] = coo.vals[order]

    ubrow = unique_keys // nblockcols
    indices = unique_keys % nblockcols
    counts = np.bincount(ubrow, minlength=nblockrows)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return BSRMatrix(indptr, indices, blocks, (nrows, ncols))


def coo_to_ell(coo: COOMatrix) -> ELLMatrix:
    """Convert COO to ELL; the width is the maximum row length."""
    nrows = coo.shape[0]
    lengths = np.bincount(coo.rows, minlength=nrows)
    width = int(lengths.max()) if lengths.size else 0
    col_idx = np.full((nrows, width), ELL_PAD, dtype=np.int64)
    values = np.zeros((nrows, width), dtype=np.float64)
    # COO is row-major sorted; compute each entry's slot within its row.
    starts = np.concatenate(([0], np.cumsum(lengths)))
    slot = np.arange(coo.nnz, dtype=np.int64) - starts[coo.rows]
    col_idx[coo.rows, slot] = coo.cols
    values[coo.rows, slot] = coo.vals
    return ELLMatrix(col_idx, values, coo.shape)


def coo_to_dia(coo: COOMatrix) -> DIAMatrix:
    """Convert COO to DIA, storing every diagonal that has a non-zero."""
    offs = coo.cols - coo.rows
    offsets = np.unique(offs)
    stripes = np.zeros((offsets.size, coo.shape[0]), dtype=np.float64)
    stripe_of_entry = np.searchsorted(offsets, offs)
    stripes[stripe_of_entry, coo.rows] = coo.vals
    return DIAMatrix(offsets, stripes, coo.shape)
