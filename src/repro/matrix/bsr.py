"""Block Sparse Row (BSR) format.

BSR stores dense ``br x bc`` blocks with CSR-style block indexing.  It is
the pattern-aware baseline of Table I: very efficient on pure block
matrices (up to 2.81x better than COO in Table VI) but it pays full dense
blocks of padding on scattered non-zeros (down to 0.39x).  The paper's
comparison uses 2x2 blocks.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.base import MatrixShapeError, SparseMatrix, validate_shape


class BSRMatrix(SparseMatrix):
    """Block sparse row matrix with dense blocks.

    Parameters
    ----------
    indptr:
        ``nblockrows + 1`` block-row pointers.
    indices:
        Block-column index of each stored block.
    blocks:
        Array of shape ``(nblocks, br, bc)`` holding dense block payloads,
        including any zero padding.
    shape:
        Logical ``(nrows, ncols)``; must be divisible by the block shape.
    """

    def __init__(self, indptr, indices, blocks, shape):
        self.shape = validate_shape(shape)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        blocks = np.asarray(blocks, dtype=np.float64)
        if blocks.ndim != 3:
            raise MatrixShapeError("blocks must be (nblocks, br, bc)")
        br, bc = blocks.shape[1], blocks.shape[2]
        if br <= 0 or bc <= 0:
            raise MatrixShapeError("block dimensions must be positive")
        if self.shape[0] % br or self.shape[1] % bc:
            raise MatrixShapeError(
                f"shape {self.shape} not divisible by block {(br, bc)}"
            )
        nblockrows = self.shape[0] // br
        if indptr.size != nblockrows + 1:
            raise MatrixShapeError(
                f"indptr must have {nblockrows + 1} entries, got {indptr.size}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise MatrixShapeError("indptr must start at 0 and be monotone")
        if indptr[-1] != indices.size or indices.size != blocks.shape[0]:
            raise MatrixShapeError("indptr/indices/blocks sizes disagree")
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.shape[1] // bc
        ):
            raise MatrixShapeError("block column indices out of range")
        self.indptr = indptr
        self.indices = indices
        self.blocks = blocks
        self.blockshape = (br, bc)

    @property
    def nblocks(self) -> int:
        """Number of stored dense blocks."""
        return int(self.blocks.shape[0])

    @property
    def nnz(self) -> int:
        """Number of non-zero entries actually present inside the blocks."""
        return int(np.count_nonzero(self.blocks))

    @property
    def stored_values(self) -> int:
        """Number of stored values including the zero padding."""
        br, bc = self.blockshape
        return self.nblocks * br * bc

    def to_dense(self) -> np.ndarray:
        br, bc = self.blockshape
        dense = np.zeros(self.shape, dtype=np.float64)
        for brow in range(self.shape[0] // br):
            lo, hi = self.indptr[brow], self.indptr[brow + 1]
            for k in range(lo, hi):
                bcol = self.indices[k]
                dense[
                    brow * br : (brow + 1) * br, bcol * bc : (bcol + 1) * bc
                ] = self.blocks[k]
        return dense

    def spmv(self, x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
        x = self.check_vector(x)
        y = self.init_output(y)
        br, bc = self.blockshape
        if self.nblocks == 0:
            return y
        # Gather the x segment of every block, batch the small matvecs.
        x_segs = x.reshape(-1, bc)[self.indices]  # (nblocks, bc)
        partials = np.einsum("kij,kj->ki", self.blocks, x_segs)
        block_rows = np.repeat(
            np.arange(self.indptr.size - 1, dtype=np.int64),
            np.diff(self.indptr),
        )
        y2d = y.reshape(-1, br)
        np.add.at(y2d, block_rows, partials)
        return y2d.reshape(-1)

    def storage_bytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Block-row pointers + one block-column index per block + the full
        dense payload of every block (padding included)."""
        br, __ = self.blockshape
        nblockrows = self.shape[0] // br
        return (
            (nblockrows + 1) * index_bytes
            + self.nblocks * index_bytes
            + self.stored_values * value_bytes
        )
