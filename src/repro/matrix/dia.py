"""Diagonal (DIA) format.

DIA stores whole (off-)diagonals as dense stripes plus one offset per
stored diagonal.  It is the canonical pattern-aware format for banded and
diagonal matrices (Table I); anything off the stored diagonals is
unrepresentable without adding a new stripe, so scattered matrices explode.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.base import MatrixShapeError, SparseMatrix, validate_shape


class DIAMatrix(SparseMatrix):
    """Diagonal-format sparse matrix.

    Parameters
    ----------
    offsets:
        Sorted 1-D int array of stored diagonal offsets
        (``col - row``; 0 is the main diagonal).
    stripes:
        ``(ndiags, nrows)`` float array; ``stripes[d, i]`` holds
        ``A[i, i + offsets[d]]`` and slots falling outside the matrix are
        zero.
    shape:
        Logical ``(nrows, ncols)``.
    """

    def __init__(self, offsets, stripes, shape):
        self.shape = validate_shape(shape)
        offsets = np.asarray(offsets, dtype=np.int64)
        stripes = np.asarray(stripes, dtype=np.float64)
        if offsets.ndim != 1 or stripes.ndim != 2:
            raise MatrixShapeError("offsets must be 1-D and stripes 2-D")
        if stripes.shape[0] != offsets.size:
            raise MatrixShapeError("one stripe required per offset")
        if stripes.shape[1] != self.shape[0]:
            raise MatrixShapeError(
                f"stripes must have nrows={self.shape[0]} columns"
            )
        if offsets.size and np.unique(offsets).size != offsets.size:
            raise MatrixShapeError("duplicate diagonal offsets")
        self.offsets = offsets
        self.stripes = stripes

    @property
    def ndiags(self) -> int:
        """Number of stored diagonals."""
        return int(self.offsets.size)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.stripes))

    @property
    def stored_values(self) -> int:
        """Stored slots including padding (full stripe per diagonal)."""
        return int(self.stripes.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.arange(self.shape[0], dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = rows + off
            valid = (cols >= 0) & (cols < self.shape[1])
            dense[rows[valid], cols[valid]] = self.stripes[d, valid]
        return dense

    def spmv(self, x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
        x = self.check_vector(x)
        y = self.init_output(y)
        rows = np.arange(self.shape[0], dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = rows + off
            valid = (cols >= 0) & (cols < self.shape[1])
            y[rows[valid]] += self.stripes[d, valid] * x[cols[valid]]
        return y

    def storage_bytes(self, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """One offset per diagonal plus a full dense stripe of values."""
        return self.ndiags * index_bytes + self.stored_values * value_bytes
