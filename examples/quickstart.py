"""Quickstart: encode a sparse matrix in the SPASM format and run it
through the simulated accelerator.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    COOMatrix,
    SpasmAccelerator,
    SpasmCompiler,
    verify_spasm,
)


def build_matrix() -> COOMatrix:
    """A small block-diagonal matrix with some random scatter."""
    rng = np.random.default_rng(7)
    n = 512
    dense = np.zeros((n, n))
    for b in range(0, n, 8):
        dense[b : b + 8, b : b + 8] = rng.uniform(0.5, 1.5, (8, 8))
    scatter = rng.random((n, n)) < 0.002
    dense[scatter] = rng.uniform(0.5, 1.5, size=int(scatter.sum()))
    return COOMatrix.from_dense(dense)


def main():
    coo = build_matrix()
    print(f"matrix: {coo.shape}, nnz={coo.nnz}, density={coo.density:.4f}")

    # Steps 1-5 of the SPASM workflow: pattern analysis, template
    # selection, decomposition, global composition + schedule.
    compiler = SpasmCompiler(tile_sizes=(64, 128, 256, 512))
    program = compiler.compile(coo)

    print(f"selected portfolio:   {program.portfolio.name} "
          f"({program.portfolio.description})")
    print(f"selected tile size:   {program.tile_size}")
    print(f"selected hardware:    {program.hw_config.describe()}")
    print(f"padding rate:         {program.spasm.padding_rate:.2%}")
    print(f"storage cost:         {program.spasm.bytes_per_nnz():.2f} "
          f"bytes/nnz (COO needs 12)")
    print(f"preprocessing time:   {program.report.total_ms:.1f} ms")

    # Static verification: check the encoding (and its opcode table)
    # against the format invariants before touching the simulator.
    report = verify_spasm(program.spasm, source=coo)
    assert report.ok, report.render()
    print(f"static verification:  {report.summary()}")

    # Step 6: hardware execution on the functional simulator.
    x = np.random.default_rng(1).random(coo.shape[1])
    accelerator = SpasmAccelerator(program.hw_config)
    result = accelerator.run(program.spasm, x)

    reference = coo.spmv(x)
    assert np.allclose(result.y, reference), "simulation mismatch!"
    print("result check:         simulated y == A @ x  (exact)")
    print(f"estimated cycles:     {result.cycles:.0f} "
          f"(bottleneck: {result.bottleneck})")
    print(f"estimated throughput: {result.gflops:.1f} GFLOP/s")


if __name__ == "__main__":
    main()
