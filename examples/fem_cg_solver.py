"""Conjugate-gradient solver on a FEM-style matrix with SPASM SpMV.

Scientific computing is the paper's amortization argument (Section
V-E4): the same matrix is multiplied thousands of times inside an
iterative solver, so a multi-second preprocessing pass pays for itself
after a few hundred iterations.  This example solves ``A z = b`` with CG
where every ``A @ p`` goes through the SPASM-encoded matrix, then prints
the amortization break-even against the modeled Serpens_a24 baseline.

Run with:  python examples/fem_cg_solver.py
"""

import numpy as np

from repro import COOMatrix, SpasmCompiler
from repro.baselines import SERPENS_A24
from repro.solvers import conjugate_gradient
from repro.synth import generators as g


def build_spd_matrix(n_nodes: int = 900, dof: int = 4) -> COOMatrix:
    """A symmetric positive-definite FEM-like matrix."""
    base = g.fem_mesh(n_nodes, dof=dof, neighbors=6, block_fill=0.7,
                      seed=3)
    dense = base.to_dense()
    sym = (dense + dense.T) / 2
    # Diagonal dominance makes it SPD.
    np.fill_diagonal(sym, np.abs(sym).sum(axis=1) + 1.0)
    return COOMatrix.from_dense(sym)


def main():
    coo = build_spd_matrix()
    print(f"FEM system: {coo.shape}, nnz={coo.nnz}")

    compiler = SpasmCompiler(tile_sizes=(128, 256, 512, 1024))
    program = compiler.compile(coo)
    print(f"portfolio={program.portfolio.name}, "
          f"tile={program.tile_size}, hw={program.hw_config.name}")
    print(f"preprocessing: {program.report.total_ms:.1f} ms")

    rng = np.random.default_rng(0)
    b = rng.random(coo.shape[0])

    # Solve with the SPASM-encoded operator (software execution of the
    # format; numerically identical to the hardware datapath).
    result = conjugate_gradient(program.spasm, b, tol=1e-8)
    iters = result.iterations
    residual = np.linalg.norm(coo.spmv(result.x) - b)
    print(f"CG converged in {iters} iterations, |Az - b| = {residual:.2e}")
    assert result.converged

    # Amortization: modeled per-SpMV time on SPASM vs Serpens_a24.
    spasm_ms = (
        program.estimate().total_cycles
        / program.hw_config.frequency_hz * 1e3
    )
    serpens_ms = SERPENS_A24().time_s(coo) * 1e3
    print(f"modeled SpMV time: SPASM {spasm_ms:.3f} ms, "
          f"Serpens_a24 {serpens_ms:.3f} ms")
    if serpens_ms > spasm_ms:
        breakeven = program.report.total_ms / (serpens_ms - spasm_ms)
        print(f"preprocessing amortized after {breakeven:.0f} SpMV calls "
              f"({breakeven / iters:.1f} CG solves of this size)")
    else:
        print("SPASM not faster on this instance; no amortization point")


if __name__ == "__main__":
    main()
