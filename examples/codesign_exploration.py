"""Hardware-software co-design exploration across the workload suite.

Reproduces the heart of the SPASM framework interactively: for a set of
matrices with very different structures, show which template portfolio,
tile size and hardware bitstream the framework selects, and what each
choice buys over a one-size-fits-all configuration.

Run with:  python examples/codesign_exploration.py
"""

from repro.analysis.report import format_table
from repro.baselines import SpasmModel
from repro.core import candidate_portfolios
from repro.hw.configs import SPASM_4_1
from repro.synth import load_suite

MATRICES = (
    "raefsky3",      # one dense block pattern
    "mip1",          # imbalanced dense rows
    "c-73",          # anti-diagonal stripes
    "t2em",          # diagonal stripes
    "x104",          # row segments
    "stormG2_1000",  # staircase LP
)


def main():
    fixed = SpasmModel(
        fixed_portfolio=candidate_portfolios()[0],
        fixed_tile_size=256,
        fixed_hw_config=SPASM_4_1,
    )
    adaptive = SpasmModel()

    rows = []
    for spec, coo in load_suite(names=MATRICES):
        program = adaptive.program(coo)
        g_fixed = fixed.gflops(coo)
        g_adaptive = adaptive.gflops(coo)
        rows.append(
            [
                spec.name,
                spec.pattern_kind,
                program.portfolio.name,
                program.tile_size,
                program.hw_config.name,
                f"{program.spasm.padding_rate:.1%}",
                g_fixed,
                g_adaptive,
                g_adaptive / g_fixed,
            ]
        )

    print(format_table(
        [
            "matrix", "structure", "portfolio", "tile", "bitstream",
            "padding", "fixed GF/s", "adaptive GF/s", "gain",
        ],
        rows,
        title="SPASM co-design choices per matrix structure",
    ))
    print()
    print("Reading the table: the framework picks anti-diagonal "
          "templates for c-73, a different bitstream for the imbalanced "
          "mip1, and leaves the already-optimal raefsky3 alone — no "
          "single static design serves all of them.")


if __name__ == "__main__":
    main()
