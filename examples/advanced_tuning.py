"""Advanced tuning: reordering + greedy portfolio + persistent encoding.

Chains the repository's extension features on a deliberately hostile
input — a scattered matrix with latent structure — and shows each stage
paying off:

1. reordering recovers locality the row order had destroyed;
2. a greedy-built custom portfolio beats every Table V candidate;
3. the tuned encoding is persisted and reloaded for reuse;
4. the fast simulation engine verifies the result at full speed.

Run with:  python examples/advanced_tuning.py
"""

import tempfile

import numpy as np

from repro import SpasmAccelerator
from repro.core import (
    GreedyPortfolioBuilder,
    analyze_local_patterns,
    best_reordering,
    candidate_portfolios,
    encode_spasm,
    load_spasm,
    save_spasm,
    select_portfolio,
)
from repro.core.selection import storage_bytes_estimate
from repro.hw.configs import SPASM_4_1
from repro.synth import generators as g


def build_hostile_matrix():
    """Latent diagonal structure hidden behind a random row order."""
    from repro.core.reorder import apply_permutation

    base = g.overlay(
        g.diagonal_stripes(2048, (0, 513), fill=0.95, seed=5),
        g.random_uniform(2048, 2e-4, seed=6),
    )
    rng = np.random.default_rng(7)
    scramble = rng.permutation(base.shape[0])
    return apply_permutation(
        base, scramble, np.arange(base.shape[1])
    ).matrix


def main():
    coo = build_hostile_matrix()
    print(f"input: {coo.shape}, nnz={coo.nnz}")

    # 1. Reordering.
    before = analyze_local_patterns(coo)
    reordered = best_reordering(coo)
    after = analyze_local_patterns(reordered.matrix)
    print(f"reordering: {before.total} -> {after.total} non-empty "
          f"submatrices (fewer is denser)")

    # 2. Portfolio: Table V candidates vs greedy universe build.
    selection = select_portfolio(after)
    candidate_bytes = storage_bytes_estimate(after, selection.portfolio)
    greedy = GreedyPortfolioBuilder().build(after)
    greedy_bytes = storage_bytes_estimate(after, greedy.portfolio)
    print(f"portfolio: best candidate {selection.portfolio.name} = "
          f"{candidate_bytes / coo.nnz:.2f} B/nnz, greedy custom = "
          f"{greedy_bytes / coo.nnz:.2f} B/nnz")
    portfolio = (
        greedy.portfolio
        if greedy_bytes < candidate_bytes
        else selection.portfolio
    )

    # 3. Encode and persist.
    spasm = encode_spasm(reordered.matrix, portfolio, tile_size=512)
    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_spasm(handle.name, spasm)
        reloaded = load_spasm(handle.name)
    print(f"persisted encoding: {spasm.storage_bytes()} bytes, "
          f"padding {spasm.padding_rate:.1%}")

    # 4. Verify with the fast engine, in the original index space.
    x = np.random.default_rng(8).random(coo.shape[1])
    result = SpasmAccelerator(SPASM_4_1).run(
        reloaded, x[reordered.col_perm], engine="fast"
    )
    y = np.empty_like(result.y)
    y[reordered.row_perm] = result.y
    assert np.allclose(y, coo.spmv(x)), "verification failed"
    print(f"fast-engine verification: exact "
          f"({result.gflops:.1f} GFLOP/s modeled, "
          f"bottleneck {result.bottleneck})")

    baseline = encode_spasm(coo, candidate_portfolios()[0], 512)
    print(f"untuned baseline: {baseline.storage_bytes()} bytes, "
          f"padding {baseline.padding_rate:.1%}")
    print(f"tuned pipeline saves "
          f"{1 - spasm.storage_bytes() / baseline.storage_bytes():.1%} "
          "of the encoded size")


if __name__ == "__main__":
    main()
