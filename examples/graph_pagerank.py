"""PageRank over a Mycielskian graph with SPASM SpMV.

Graph analytics is one of the SpMV application domains the paper's
introduction motivates (the mycielskian14 workload).  PageRank's power
iteration is a chain of SpMV calls over a fixed matrix — another
preprocessing-amortizing workload.

Run with:  python examples/graph_pagerank.py
"""

import numpy as np

from repro import COOMatrix, SpasmCompiler
from repro.synth import generators as g


def column_stochastic(adjacency: COOMatrix) -> COOMatrix:
    """Normalize columns so each sums to 1 (dangling columns untouched)."""
    out_degree = np.bincount(
        adjacency.cols, minlength=adjacency.shape[1]
    ).astype(np.float64)
    scale = np.where(out_degree > 0, 1.0 / np.maximum(out_degree, 1), 0.0)
    return COOMatrix(
        adjacency.rows,
        adjacency.cols,
        adjacency.vals * 0 + scale[adjacency.cols],
        adjacency.shape,
    )


def pagerank(spmv, n, damping=0.85, tol=1e-10, max_iters=200):
    """Power iteration; ``spmv`` computes M @ rank."""
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for iteration in range(max_iters):
        new_rank = damping * spmv(rank) + teleport
        # Redistribute dangling mass uniformly.
        new_rank += (1.0 - new_rank.sum()) / n
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank, iteration + 1
        rank = new_rank
    return rank, max_iters


def main():
    graph = g.mycielskian_graph(10)
    n = graph.shape[0]
    print(f"Mycielskian M10 graph: {n} vertices, {graph.nnz} edges")

    transition = column_stochastic(graph)
    compiler = SpasmCompiler(tile_sizes=(64, 128, 256, 512))
    program = compiler.compile(transition)
    print(f"portfolio={program.portfolio.name}, "
          f"tile={program.tile_size}, hw={program.hw_config.name}, "
          f"padding={program.spasm.padding_rate:.1%}")

    rank, iters = pagerank(program.spasm.spmv, n)
    print(f"PageRank converged in {iters} iterations")

    reference, __ = pagerank(transition.spmv, n)
    assert np.allclose(rank, reference)
    print("result check: SPASM ranks == reference ranks")

    top = np.argsort(rank)[::-1][:5]
    print("top-5 vertices by rank:")
    for v in top:
        print(f"  vertex {v:5d}  rank {rank[v]:.6f}")
    print(f"modeled SpMV throughput: {program.estimated_gflops():.1f} "
          f"GFLOP/s on {program.hw_config.name}")


if __name__ == "__main__":
    main()
