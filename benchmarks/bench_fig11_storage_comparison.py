"""Figure 11 + Table VI: storage cost comparison across data formats.

Encodes every suite matrix in COO, CSR, BSR (2x2), the HiSparse/Serpens
packed format and SPASM (with dynamic portfolio selection), normalizing
to COO.  Paper shape: SPASM has the best geometric-mean improvement
(1.79x, max 2.40x); CSR sits near 1.46x; HiSparse/Serpens exactly 1.50x;
BSR wins only on block-structured matrices.
"""

from benchmarks.conftest import publish
from repro.analysis.storage_compare import (
    render_storage_comparison,
    storage_summary,
    suite_storage_reports,
)


def test_fig11_table06_storage(benchmark, suite):
    reports = benchmark(suite_storage_reports, suite)

    publish("fig11_table06_storage", render_storage_comparison(reports))

    summary = storage_summary(reports)
    # HiSparse/Serpens: constant 1.50x by construction.
    hs = summary["HiSparse & Serpens"]
    assert hs["min"] == hs["max"] == 1.5
    # CSR: bounded by 1.5, typically ~1.4+.
    assert 1.2 < summary["CSR"]["geomean"] <= 1.5
    # SPASM: best geomean of all formats, max ~2.4 (pure dense blocks).
    best = max(s["geomean"] for s in summary.values())
    assert summary["SPASM"]["geomean"] == best
    assert summary["SPASM"]["max"] > 2.0
    # BSR: high variance — great on blocks, poor on scatter.
    assert summary["BSR"]["max"] > 1.5
    assert summary["BSR"]["min"] < 1.0
