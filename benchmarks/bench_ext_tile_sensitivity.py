"""Extension: tile-size sensitivity of the performance model.

Figure 14 showed that tile-size exploration is worth ~13%; this bench
exposes the underlying curve the explorer walks: estimated cycles per
tile size (SPASM_4_1) for matrices with opposite preferences.  The
expected shape is a U: tiny tiles multiply tile-switch overhead and
x reloads, huge tiles starve the PE array of parallel tiles — and the
minimum sits at different sizes for different global compositions,
which is exactly why Algorithm 4 sweeps it per matrix.
"""

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.core import DecompositionTable, candidate_portfolios
from repro.core.format import groups_per_submatrix
from repro.core.tiling import extract_global_composition
from repro.hw.configs import SPASM_4_1
from repro.hw.perf_model import perf_model

MATRICES = ("raefsky3", "mip1", "tmt_sym", "mycielskian14")
TILE_SIZES = (16, 64, 256, 1024, 4096)


def test_ext_tile_sensitivity(benchmark, suite):
    by_name = dict(suite)
    table_dec = DecompositionTable(candidate_portfolios()[0])

    def sweep():
        rows = []
        for name in MATRICES:
            coo = by_name[name]
            counts, keys = groups_per_submatrix(coo, table_dec)
            cycles = []
            for tile_size in TILE_SIZES:
                gc = extract_global_composition(
                    coo, counts, keys, tile_size
                )
                cycles.append(perf_model(gc, SPASM_4_1, tile_size))
            rows.append((name, cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = []
    for name, cycles in rows:
        best = TILE_SIZES[cycles.index(min(cycles))]
        table_rows.append([name] + [f"{c:.0f}" for c in cycles] + [best])
    table = format_table(
        ["matrix"] + [f"tile {t}" for t in TILE_SIZES] + ["best"],
        table_rows,
        title="Extension: estimated cycles vs tile size (SPASM_4_1)",
    )
    publish("ext_tile_sensitivity", table)

    best_sizes = {
        name: TILE_SIZES[cycles.index(min(cycles))]
        for name, cycles in rows
    }
    # Different global compositions prefer different tile sizes.
    assert len(set(best_sizes.values())) >= 2
    # The extremes are never uniformly best across the suite subset.
    for name, cycles in rows:
        assert min(cycles) < max(cycles)
