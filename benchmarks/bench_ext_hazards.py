"""Extension: accumulator hazard sensitivity and stream reordering.

The calibrated performance model assumes a hazard-free psum pipeline
(II=1).  Real pipelined FP adders take several cycles, and repeat
visits to the same partial-sum word stall — the effect the Serpens
architecture is largely built around.  This bench sweeps the adder
latency over the suite, showing (a) how many cycles stock SPASM streams
would lose, and (b) how much of that loss the encoder's hazard-aware
intra-tile reordering recovers at zero hardware cost.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.hw.hazards import hazard_aware_reorder, perf_with_hazards


def test_ext_hazards(benchmark, suite, spasm_model):
    def sweep():
        rows = []
        for name, coo in suite:
            program = spasm_model.program(coo)
            spasm = program.spasm
            config = program.hw_config
            base = perf_with_hazards(spasm, config, 0)
            stock8 = perf_with_hazards(spasm, config, 8)
            reordered = hazard_aware_reorder(spasm)
            tuned8 = perf_with_hazards(reordered, config, 8)
            rows.append((name, base, stock8, tuned8))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = []
    for name, base, stock8, tuned8 in rows:
        table_rows.append(
            [
                name, base, stock8, tuned8,
                stock8 / base, stock8 / tuned8,
            ]
        )
    slowdown = math.exp(
        sum(math.log(r[4]) for r in table_rows) / len(table_rows)
    )
    recovery = math.exp(
        sum(math.log(r[5]) for r in table_rows) / len(table_rows)
    )
    table_rows.append(["geomean", "", "", "", slowdown, recovery])
    table = format_table(
        [
            "matrix", "cycles L=0", "stock L=8", "reordered L=8",
            "hazard slowdown", "reorder recovery",
        ],
        table_rows,
        title="Extension: accumulator hazards (adder latency 8)",
    )
    publish("ext_hazards", table)

    for name, base, stock8, tuned8 in rows:
        # Hazards never speed things up; reordering never hurts.
        assert stock8 >= base - 1e-9, name
        assert tuned8 <= stock8 + 1e-9, name
        assert tuned8 >= base - 1e-9, name
    # Hazards cost real cycles somewhere, and reordering recovers a
    # real share of them.
    assert slowdown > 1.01
    assert recovery > 1.005
