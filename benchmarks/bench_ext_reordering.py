"""Extension: reordering preprocessing ablation.

The paper's related work points at row reordering (Trotter et al.,
SC'23) as a complementary preprocessing lever.  This bench measures, per
suite matrix, the SPASM storage cost of the identity ordering vs the
best of the candidate orderings (row block-signature grouping;
symmetric degree sort for square matrices).

Expected shape: structured matrices (bands, blocks, stripes) gain
nothing — their layout is already what reordering aims for — while
scattered and irregular matrices (graphs, LP staircases) gain a few
percent; the best-of ordering never loses because identity stays in
the race.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.analysis.storage_compare import spasm_storage_bytes
from repro.core.reorder import best_reordering


def test_ext_reordering(benchmark, suite):
    def sweep():
        rows = []
        for name, coo in suite:
            before = spasm_storage_bytes(coo) / coo.nnz
            best = best_reordering(coo)
            after = spasm_storage_bytes(best.matrix) / coo.nnz
            reordered = best.matrix is not coo
            rows.append((name, before, after, before / after, reordered))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = [
        [name, before, after, gain, "yes" if reordered else "no"]
        for name, before, after, gain, reordered in rows
    ]
    gm = math.exp(
        sum(math.log(r[3]) for r in rows) / len(rows)
    )
    table_rows.append(["geomean", "", "", gm, ""])
    table = format_table(
        ["matrix", "identity B/nnz", "best B/nnz", "gain", "reordered?"],
        table_rows,
        title="Extension: reordering preprocessing",
        precision=3,
    )
    publish("ext_reordering", table)

    for name, before, after, gain, __ in rows:
        assert gain >= 1.0 - 1e-9, name  # identity always in the race
    # Some irregular matrix must benefit.
    assert any(gain > 1.005 for __, __, __, gain, __ in rows)
