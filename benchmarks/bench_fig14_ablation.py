"""Figure 14: performance gained by each optimization module.

Ablates the two optimization stages against a fixed baseline
(SPASM_4_1, fixed tile size, fixed portfolio-0):

* +⑤ workload schedule exploration (bitstream + tile size),
* +② template pattern selection on top.

Paper shape: schedule exploration averages ~1.13x (up to 1.82x on
imbalanced matrices like mip1); template selection adds ~1.04x on
average (up to 1.36x on anti-diagonal matrices like c-73).

The fixed baseline tile is 256 rather than the paper's 1024: the
synthetic suite is scaled down ~50x from the SuiteSparse originals, and
a 1024 tile on a few-thousand-row matrix collapses the PE array to a
handful of tile rows, which no real deployment would configure.
"""

from benchmarks.conftest import publish
from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.baselines import SpasmModel
from repro.core import candidate_portfolios
from repro.hw.configs import SPASM_4_1

BASELINE_TILE = 256


def test_fig14_ablation(benchmark, suite):
    portfolio0 = candidate_portfolios()[0]
    fixed = SpasmModel(
        fixed_portfolio=portfolio0,
        fixed_tile_size=BASELINE_TILE,
        fixed_hw_config=SPASM_4_1,
    )
    plus_schedule = SpasmModel(fixed_portfolio=portfolio0)
    plus_selection = SpasmModel()

    def ablate():
        rows = []
        for name, coo in suite:
            g0 = fixed.gflops(coo)
            g1 = plus_schedule.gflops(coo)
            g2 = plus_selection.gflops(coo)
            rows.append((name, g0, g1, g2))
        return rows

    rows = benchmark.pedantic(ablate, rounds=1, iterations=1)

    table_rows = [
        [name, g0, g1, g2, g1 / g0, g2 / g1] for name, g0, g1, g2 in rows
    ]
    schedule_gain = geomean([g1 / g0 for __, g0, g1, __ in rows])
    selection_gain = geomean([g2 / g1 for __, __, g1, g2 in rows])
    table_rows.append(
        ["geomean", "", "", "", schedule_gain, selection_gain]
    )
    table = format_table(
        [
            "matrix", "baseline", "+schedule (5)", "+selection (2)",
            "sched gain", "select gain",
        ],
        table_rows,
        title="Figure 14: ablation of the optimization modules",
    )
    publish("fig14_ablation", table)

    gains = {name: (g1 / g0, g2 / g1) for name, g0, g1, g2 in rows}
    # Both modules help on average, schedule exploration the most.
    assert schedule_gain > 1.05
    assert selection_gain >= 1.0
    assert schedule_gain > selection_gain
    # Imbalanced mip1 benefits most from dynamic scheduling.
    assert gains["mip1"][0] > schedule_gain
    # Neither stage may lose performance anywhere (the explored space
    # contains the baseline point).
    assert all(g1 >= g0 * 0.999 for __, g0, g1, __ in rows)
