"""Extension: compiled execution plans vs the naive format execution.

The reference ``SpasmMatrix.spmv_naive`` re-expands every stored slot
to coordinates and accumulates with ``np.add.at`` on every call.  A
v2 :class:`~repro.exec.plan.ExecutionPlan` does that work once — at
encode time (the fused build consumes the encoder's intermediates
instead of re-expanding the stream), with padding dropped, the stream
sorted by output row and indices stored at the narrowest dtype the
shape admits — so each call is one sequential segmented accumulation.

This bench measures, per workload class (diagonal stripes, dense
blocks, scale-free graph):

* ``build_ms`` — the fused encode-time build vs a v1-style re-expansion
  compile, and the time-to-first-SpMV they imply;
* ``spmv_ms`` — per-dtype single-thread latency (int64, compact int32,
  opt-in float32) against the naive reference;
* ``sharded_ms`` — the nnz auto-heuristic (``jobs=None``) and a forced
  shard grid;
* ``batch`` — queries/s of the blocked SpMM batch engine;
* ``backends`` — a per-backend sweep over every available registered
  kernel backend that claims the canonical plan, each gated
  **bitwise** against the ``gather`` reference, with
  ``backend_auto`` recording what negotiation resolved;
* ``tuned`` — the per-matrix autotuned configuration
  (``repro.tune``) against the default plan dispatch: spmv latency,
  batch queries/s and the winning knobs, gated bitwise at every
  scale and never-slower-than-default at timing-gate scale.

Every float64 engine must agree with the naive reference **bitwise**
(``agree``); float32 is checked to tolerance (``agree_float32``).  Any
divergence fails the build outright.  The timing gates (≥5x over
naive, ≥1.3x int32 over int64 under the CSR kernels, fused
time-to-first-SpMV ≤ half the recorded PR4 baseline, auto-sharding
never losing to single-thread) apply to matrices at or above one
million non-zeros, so the tiny CI smoke run (driven through a small
``REPRO_BENCH_SCALE``) checks agreement without timing noise flaking
the build.  Results land in ``BENCH_exec.json`` at the repo root for
CI to archive.
"""

import json
import pathlib
import time

import numpy as np

from benchmarks.conftest import bench_scale, publish
from repro.analysis.report import format_table
from repro.core import candidate_portfolios, encode_spasm
from repro.exec import (
    ExecutionPlan,
    available_backends,
    csr_kernels_available,
    resolve_backend,
)
from repro.resilience import ExecutionGuard
from repro.synth import load_workload
from repro.tune import tune_matrix

#: (workload, base scale): tmt_sym crosses 1e6 nnz — the acceptance
#: headline; the other two cover dense-block and scale-free structure.
CLASSES = (
    ("tmt_sym", 25.0),
    ("raefsky3", 4.0),
    ("mycielskian14", 1.0),
)
SHARD_JOBS = 4
BATCH_QUERIES = 16
RESULT_JSON = pathlib.Path(__file__).parent.parent / "BENCH_exec.json"

#: Time-to-first-SpMV recorded by the PR4 bench (plan_build_ms +
#: plan_ms on the full-scale run); the fused path must at least halve
#: it.
PR4_TTF_MS = {"tmt_sym": 175.9}


def best_of(fn, repeats=3):
    """Best wall time of ``repeats`` calls, in seconds."""
    times = []
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def best_of_pair(fn_a, fn_b, repeats=5):
    """Best wall times of two functions, sampled interleaved.

    Timing the two back-to-back in alternating order makes a drifting
    host (CPU throttling mid-measurement) hit both equally — the
    comparison gates care about the *ratio*, which sequential blocks
    would skew.
    """
    best_a = best_b = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def measure(name, scale):
    coo = load_workload(name, scale=scale)
    portfolio = candidate_portfolios()[0]

    # Fused path: the plan materializes from the encoder's
    # intermediates; its build_ms is stamped inside the encoder.
    # Build times are best-of-3 like every other timing here — the
    # first encode in a process pays one-off allocator/page-fault
    # costs that are not the build's.
    spasm = encode_spasm(coo, portfolio, 32, build_plan=True)
    plan = spasm.plan()
    fused_build_ms = plan.build_ms
    for __ in range(2):
        fused_build_ms = min(
            fused_build_ms,
            encode_spasm(
                coo, portfolio, 32, build_plan=True
            )._plan.build_ms,
        )

    # v1-style compile: re-expand the finished stream.
    rebuilt = ExecutionPlan.build(spasm)
    compile_build_ms = best_of(
        lambda: ExecutionPlan.build(spasm)
    ) * 1e3
    fused_matches_compile = (
        rebuilt.checksum == plan.checksum
        and rebuilt.digest == plan.digest
    )

    plan_i64 = ExecutionPlan.build(spasm, index="int64")
    plan_f32 = ExecutionPlan.build(spasm, precision="float32")

    rng = np.random.default_rng(7)
    x = rng.random(spasm.shape[1])
    xs = np.ascontiguousarray(
        rng.random((BATCH_QUERIES, spasm.shape[1]))
    )

    reference = spasm.spmv_naive(x)
    guard = ExecutionGuard(spasm)
    batch_out = plan.spmv_batch(xs)
    batch_ref = np.stack([plan.spmv(q, jobs=1) for q in xs])
    agree = bool(
        np.array_equal(plan.spmv(x, jobs=1), reference)
        and np.array_equal(plan_i64.spmv(x, jobs=1), reference)
        and np.array_equal(plan.spmv(x), reference)
        and np.array_equal(plan.spmv(x, jobs=SHARD_JOBS), reference)
        and np.array_equal(guard.spmv(x), reference)
        and np.array_equal(batch_out, batch_ref)
        and fused_matches_compile
    )
    agree_f32 = bool(np.allclose(
        plan_f32.spmv(x, jobs=1), reference, rtol=1e-5, atol=1e-8
    ))

    naive_s = best_of(lambda: spasm.spmv_naive(x))
    # The ratio gates (int32 vs int64, auto vs single-thread) compare
    # interleaved samples so host-speed drift cannot skew them.
    i32_s, i64_s = best_of_pair(
        lambda: plan.spmv(x, jobs=1),
        lambda: plan_i64.spmv(x, jobs=1),
    )
    f32_s = best_of(lambda: plan_f32.spmv(x, jobs=1))
    auto_s, i32_auto_s = best_of_pair(
        lambda: plan.spmv(x),
        lambda: plan.spmv(x, jobs=1),
    )
    i32_s = min(i32_s, i32_auto_s)
    forced_s = best_of(lambda: plan.spmv(x, jobs=SHARD_JOBS))
    batch_s = best_of(lambda: plan.spmv_batch(xs))

    # Per-backend sweep: every *available* registered backend that
    # claims the canonical plan, each gated bitwise against the
    # gather reference (the backend-split acceptance criterion).
    gather_v = plan.spmv(x, jobs=1, backend="gather")
    gather_b = plan.spmv_batch(xs, backend="gather")
    backends = {}
    for engine in available_backends():
        if not engine.supports(plan, "spmv"):
            continue
        got_v = plan.spmv(x, jobs=1, backend=engine.name)
        got_b = plan.spmv_batch(xs, backend=engine.name)
        backends[engine.name] = {
            "spmv_ms": best_of(
                lambda e=engine: plan.spmv(x, jobs=1, backend=e.name)
            ) * 1e3,
            "batch_qps": BATCH_QUERIES / best_of(
                lambda e=engine: plan.spmv_batch(xs, backend=e.name)
            ),
            "agree": bool(
                np.array_equal(got_v, gather_v)
                and np.array_equal(got_b, gather_b)
            ),
        }
    backend_auto = resolve_backend(None, plan=plan, op="spmv").name

    # Per-matrix autotuned configuration vs the default dispatch.
    tune_result = tune_matrix(coo, repeats=2)
    cfg = tune_result.config
    executor = spasm.apply_tuned(cfg)
    tuned_agree = bool(
        np.array_equal(executor.spmv(x), reference)
        and np.array_equal(executor.spmv_batch(xs), batch_ref)
    )
    tuned_s, tuned_default_s = best_of_pair(
        lambda: executor.spmv(x),
        lambda: plan.spmv(x),
    )
    tuned_batch_s, default_batch_s = best_of_pair(
        lambda: executor.spmv_batch(xs),
        lambda: plan.spmv_batch(xs),
    )
    spasm.apply_tuned(None)

    return {
        "matrix": name,
        "scale": scale,
        "shape": list(coo.shape),
        "nnz": int(coo.nnz),
        "plan_slots": plan.n_slots,
        "layout": f"{plan.cols.dtype.name}/{plan.vals.dtype.name}",
        "csr_kernels": csr_kernels_available(),
        "build_ms": {
            "fused": fused_build_ms,
            "compile": compile_build_ms,
        },
        "ttf_ms": fused_build_ms + i32_s * 1e3,
        "ttf_pr4_ms": PR4_TTF_MS.get(name),
        "naive_ms": naive_s * 1e3,
        "plan_ms": i32_s * 1e3,
        "spmv_ms": {
            "naive": naive_s * 1e3,
            "int64": i64_s * 1e3,
            "int32": i32_s * 1e3,
            "float32": f32_s * 1e3,
        },
        "sharded_ms": {
            "auto": auto_s * 1e3,
            "auto_jobs": plan._auto_jobs(),
            "forced": forced_s * 1e3,
            "forced_jobs": SHARD_JOBS,
        },
        "batch": {
            "queries": BATCH_QUERIES,
            "ms": batch_s * 1e3,
            "per_query_ms": batch_s / BATCH_QUERIES * 1e3,
            "qps": BATCH_QUERIES / batch_s,
        },
        "batch_qps": BATCH_QUERIES / batch_s,
        "backends": backends,
        "backend_auto": backend_auto,
        "tuned": {
            "layout": cfg.layout,
            "backend": cfg.backend,
            "jobs": cfg.jobs,
            "portfolio": cfg.portfolio,
            "tile_size": cfg.tile_size,
            "batch_block": cfg.batch_block,
            "structure_bitwise": cfg.structure_bitwise,
            "candidates_total": cfg.candidates_total,
            "candidates_measured": cfg.candidates_measured,
            "spmv_ms": tuned_s * 1e3,
            "default_spmv_ms": tuned_default_s * 1e3,
            "batch_qps": BATCH_QUERIES / tuned_batch_s,
            "default_batch_qps": BATCH_QUERIES / default_batch_s,
            "speedup": tuned_default_s / tuned_s,
            "agree": tuned_agree,
        },
        "speedup": naive_s / i32_s,
        "int32_vs_int64": i64_s / i32_s,
        "agree": agree,
        "agree_float32": agree_f32,
    }


def test_exec_plan_speedup(benchmark):
    scale = bench_scale()

    def sweep():
        return [
            measure(name, base * scale) for name, base in CLASSES
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["matrix", "nnz", "naive ms", "i64 ms", "i32 ms",
         "tuned ms", "fused build ms", "auto ms", "batch q/s",
         "backend", "agree"],
        [
            [r["matrix"], r["nnz"], r["spmv_ms"]["naive"],
             r["spmv_ms"]["int64"], r["spmv_ms"]["int32"],
             r["tuned"]["spmv_ms"],
             r["build_ms"]["fused"], r["sharded_ms"]["auto"],
             r["batch_qps"], r["backend_auto"],
             "yes" if r["agree"] else "NO"]
            for r in results
        ],
        title="Extension: compiled plan v2 vs naive SpMV execution",
        precision=2,
    )
    publish("exec_plan", table)
    backend_rows = [
        [r["matrix"], name, b["spmv_ms"], b["batch_qps"],
         "yes" if b["agree"] else "NO"]
        for r in results
        for name, b in r["backends"].items()
    ]
    publish("exec_backends", format_table(
        ["matrix", "backend", "spmv ms", "batch q/s",
         "agree vs gather"],
        backend_rows,
        title="Per-backend kernel sweep (bitwise-gated vs gather)",
        precision=2,
    ))

    RESULT_JSON.write_text(
        json.dumps(
            {
                "bench": "exec_plan",
                "scale": scale,
                "shard_jobs": SHARD_JOBS,
                "batch_queries": BATCH_QUERIES,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Numeric divergence between engines fails the build outright —
    # bitwise for every float64 engine, tolerance for float32.
    for r in results:
        assert r["agree"], f"{r['matrix']}: an engine diverges bitwise"
        assert r["agree_float32"], (
            f"{r['matrix']}: float32 outside tolerance"
        )
        # The divergence gate of the backend registry: every
        # registered backend must reproduce gather bit for bit.
        for name, b in r["backends"].items():
            assert b["agree"], (
                f"{r['matrix']}: backend {name!r} diverges bitwise "
                "from the gather reference"
            )
        # The tuned executor is a dispatch optimization, never a
        # numeric change: bitwise at every scale.
        assert r["tuned"]["agree"], (
            f"{r['matrix']}: tuned executor diverges bitwise from "
            "the naive reference"
        )
    # Timing gates apply at >=1e6 nnz (smoke runs stay noise-immune).
    for r in results:
        if r["nnz"] < 1_000_000:
            continue
        assert r["speedup"] >= 5.0, (
            f"{r['matrix']}: {r['speedup']:.2f}x < 5x at "
            f"{r['nnz']} nnz"
        )
        if r["csr_kernels"]:
            assert r["int32_vs_int64"] >= 1.3, (
                f"{r['matrix']}: compact int32 only "
                f"{r['int32_vs_int64']:.2f}x over int64 (< 1.3x)"
            )
        if r["ttf_pr4_ms"]:
            assert r["ttf_ms"] <= 0.5 * r["ttf_pr4_ms"], (
                f"{r['matrix']}: time-to-first-SpMV "
                f"{r['ttf_ms']:.1f} ms not 2x better than the "
                f"{r['ttf_pr4_ms']:.1f} ms PR4 baseline"
            )
        # The auto heuristic must never lose to single-thread.
        assert (
            r["sharded_ms"]["auto"] <= r["spmv_ms"]["int32"] * 1.10
        ), (
            f"{r['matrix']}: auto sharding "
            f"{r['sharded_ms']['auto']:.2f} ms slower than "
            f"single-thread {r['spmv_ms']['int32']:.2f} ms"
        )
        # Tuning must never regress the default dispatch.
        assert (
            r["tuned"]["spmv_ms"]
            <= r["tuned"]["default_spmv_ms"] * 1.10
        ), (
            f"{r['matrix']}: tuned spmv "
            f"{r['tuned']['spmv_ms']:.2f} ms slower than default "
            f"{r['tuned']['default_spmv_ms']:.2f} ms"
        )
