"""Extension: compiled execution plans vs the naive format execution.

The reference ``SpasmMatrix.spmv_naive`` re-expands every stored slot
to coordinates and accumulates with ``np.add.at`` on every call.  The
:class:`~repro.exec.plan.ExecutionPlan` does that work once — padding
dropped, stream sorted by output row, segment boundaries precomputed —
so each call is a gather plus one ``np.add.reduceat``.  This bench
measures the per-call win on three structurally distinct workload
classes (diagonal stripes, dense blocks, scale-free graph), checks the
engines agree numerically, and records the numbers in
``BENCH_exec.json`` at the repo root for CI to archive.

The ≥5x single-thread speedup acceptance gate applies to matrices at or
above one million non-zeros, so the tiny CI smoke run (driven through a
small ``REPRO_BENCH_SCALE``) checks agreement without timing noise
flaking the build.
"""

import json
import pathlib
import time

import numpy as np

from benchmarks.conftest import bench_scale, publish
from repro.analysis.report import format_table
from repro.core import candidate_portfolios, encode_spasm
from repro.synth import load_workload

#: (workload, base scale): tmt_sym crosses 1e6 nnz — the acceptance
#: headline; the other two cover dense-block and scale-free structure.
CLASSES = (
    ("tmt_sym", 25.0),
    ("raefsky3", 4.0),
    ("mycielskian14", 1.0),
)
SHARD_JOBS = 4
RESULT_JSON = pathlib.Path(__file__).parent.parent / "BENCH_exec.json"


def best_of(fn, repeats=3):
    """Best wall time of ``repeats`` calls, in seconds."""
    times = []
    for __ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def measure(name, scale):
    coo = load_workload(name, scale=scale)
    spasm = encode_spasm(coo, candidate_portfolios()[0], 32)
    rng = np.random.default_rng(7)
    x = rng.random(spasm.shape[1])

    t0 = time.perf_counter()
    plan = spasm.plan()
    build_s = time.perf_counter() - t0

    reference = spasm.spmv_naive(x)
    agree = bool(np.allclose(plan.spmv(x), reference))

    naive_s = best_of(lambda: spasm.spmv_naive(x))
    plan_s = best_of(lambda: plan.spmv(x))
    sharded_s = best_of(lambda: plan.spmv(x, jobs=SHARD_JOBS))
    return {
        "matrix": name,
        "scale": scale,
        "shape": list(coo.shape),
        "nnz": int(coo.nnz),
        "plan_slots": plan.n_slots,
        "plan_build_ms": build_s * 1e3,
        "naive_ms": naive_s * 1e3,
        "plan_ms": plan_s * 1e3,
        "sharded_ms": sharded_s * 1e3,
        "speedup": naive_s / plan_s,
        "sharded_speedup": naive_s / sharded_s,
        "agree": agree,
    }


def test_exec_plan_speedup(benchmark):
    scale = bench_scale()

    def sweep():
        return [
            measure(name, base * scale) for name, base in CLASSES
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["matrix", "nnz", "naive ms", "plan ms",
         f"jobs={SHARD_JOBS} ms", "speedup", "agree"],
        [
            [r["matrix"], r["nnz"], r["naive_ms"], r["plan_ms"],
             r["sharded_ms"], r["speedup"],
             "yes" if r["agree"] else "NO"]
            for r in results
        ],
        title="Extension: compiled plan vs naive SpMV execution",
        precision=2,
    )
    publish("exec_plan", table)

    RESULT_JSON.write_text(
        json.dumps(
            {
                "bench": "exec_plan",
                "scale": scale,
                "shard_jobs": SHARD_JOBS,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Numeric divergence between engines fails the build outright.
    for r in results:
        assert r["agree"], f"{r['matrix']}: plan diverges from naive"
    # The acceptance gate: >=5x single-thread on a >=1e6-nnz matrix.
    for r in results:
        if r["nnz"] >= 1_000_000:
            assert r["speedup"] >= 5.0, (
                f"{r['matrix']}: {r['speedup']:.2f}x < 5x at "
                f"{r['nnz']} nnz"
            )
