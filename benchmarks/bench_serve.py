"""Extension: the robust serving layer under load and under chaos.

Two phases, one report (``BENCH_serve.json`` at the repo root):

* **serving** — a :class:`~repro.serve.SpmvServer` with the
  production guard config (:data:`repro.serve.SERVE_GUARD`) over
  three Table II matrices, driven by seeded mixed-tenant traffic
  (one latency tenant with per-request deadlines, one batch tenant).
  Records sustained QPS and p50/p95/p99; every response is audited
  bitwise against pristine references.
* **chaos** — the :mod:`repro.resilience.chaos` smoke campaign: the
  same serving stack hardened to :data:`~repro.resilience.chaos.CHAOS_GUARD`,
  with stream/value/plan/backend/cache/worker faults fired at the
  live server between bursts.  Its report carries clean-phase and
  chaos-phase percentiles measured under the *same* guard config, so
  the clean-vs-chaos comparison isolates the faults themselves.

Gates (CI fails on any):

* zero escaped faults (an ``ok`` response with a wrong result);
* zero ``failed`` responses in the clean serving phase;
* every non-``ok`` clean response is a deadline shed, never an
  unverified answer;
* chaos p99 within ``P99_CHAOS_FACTOR`` of the campaign's own clean
  p99 (plus an absolute grace floor, since these are millisecond-
  scale measurements on shared CI hardware).
"""

import json
import pathlib

import numpy as np

from benchmarks.conftest import bench_scale, publish
from repro.analysis.report import format_table
from repro.resilience import run_chaos_campaign
from repro.serve import (
    AdmissionConfig,
    PlanRegistry,
    SpmvServer,
    TenantSpec,
    run_load,
    tenant_probes,
)
from repro.synth import load_workload

RESULT_JSON = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"

#: (workload, base scale) for the serving phase.
MATRICES = (
    ("tmt_sym", 1.0),
    ("mip1", 0.5),
    ("Goodwin_054", 0.5),
)
SERVE_REQUESTS = 400
SERVE_WORKERS = 2
LATENCY_DEADLINE_MS = 500.0

#: Chaos p99 may exceed the campaign's clean p99 by this factor ...
P99_CHAOS_FACTOR = 10.0
#: ... plus this absolute grace (ms) for sub-millisecond baselines.
P99_GRACE_MS = 25.0


def serving_phase(scale):
    """Clean-path serving: QPS/latency plus a bitwise audit."""
    registry = PlanRegistry(seed=11)
    ncols = {}
    pristine = {}
    for workload, base in MATRICES:
        name = f"{workload}@{base * scale:g}"
        coo = load_workload(workload, base * scale)
        entry = registry.register(name, coo=coo)
        ncols[name] = int(entry.spasm.shape[1])
        pristine[name] = entry.spasm
    names = sorted(ncols)
    tenants = [
        TenantSpec(name="latency", plan=names[0], weight=2.0,
                   deadline_ms=LATENCY_DEADLINE_MS, n_probes=4),
        TenantSpec(name="batch", plan=names[1], weight=1.0,
                   deadline_ms=None, n_probes=4),
        TenantSpec(name="bulk", plan=names[2], weight=1.0,
                   deadline_ms=None, n_probes=4),
    ]
    probes = tenant_probes(tenants, ncols, seed=11)
    refs = {
        t.name: [pristine[t.plan].spmv(probes[t.name][i])
                 for i in range(probes[t.name].shape[0])]
        for t in tenants
    }
    # The load generator submits open-loop (faster than service), so
    # the clean phase sizes its queues above the request count: every
    # request is admitted and the only legitimate shed reason left is
    # a deadline.  Overload shedding is exercised by the admission
    # unit tests and the chaos campaign's tighter bounds.
    server = SpmvServer(
        registry,
        admission=AdmissionConfig(
            max_queue_per_plan=SERVE_REQUESTS,
            max_total=2 * SERVE_REQUESTS,
        ),
        workers=SERVE_WORKERS,
    )
    with server:
        report = run_load(server, tenants, probes, SERVE_REQUESTS,
                          seed=13)
        stats = server.stats()
    wrong = sum(
        1 for r in report.records
        if r.response.ok
        and not np.array_equal(r.response.y, refs[r.tenant][r.probe])
    )
    counts = report.counts()
    non_deadline_sheds = sum(
        1 for r in report.records
        if r.response.status == "shed"
        and "deadline" not in r.response.detail
    )
    return {
        "requests": len(report.records),
        "counts": counts,
        "qps": report.qps(),
        "latency_ms": report.percentiles_ms(),
        "wall_s": report.wall_s,
        "wrong_ok_responses": wrong,
        "non_deadline_sheds": non_deadline_sheds,
        "ladder_level": stats["ladder"]["level"],
        "hot_bytes": stats["registry"]["hot_bytes"],
        "shed": stats["admission"]["shed"],
    }


def test_serve_bench(benchmark):
    scale = bench_scale()

    def run():
        serving = serving_phase(scale)
        chaos = run_chaos_campaign("smoke", seed=0)
        return serving, chaos

    serving, chaos = benchmark.pedantic(run, rounds=1, iterations=1)

    chaos_totals = chaos["chaos"]["totals"]
    clean_p99 = chaos["clean"]["latency_ms"]["p99"]
    chaos_p99 = chaos["chaos"]["latency_ms"]["p99"]
    table = format_table(
        ["phase", "requests", "qps", "p50 ms", "p95 ms", "p99 ms",
         "escaped"],
        [
            ["serving (clean)", serving["requests"], serving["qps"],
             serving["latency_ms"]["p50"],
             serving["latency_ms"]["p95"],
             serving["latency_ms"]["p99"],
             serving["wrong_ok_responses"]],
            ["chaos: clean", chaos["clean"]["requests"],
             chaos["clean"]["qps"],
             chaos["clean"]["latency_ms"]["p50"],
             chaos["clean"]["latency_ms"]["p95"], clean_p99,
             chaos["clean"]["audit"]["escaped"]],
            ["chaos: faulted", chaos_totals["requests"], "-",
             chaos["chaos"]["latency_ms"]["p50"],
             chaos["chaos"]["latency_ms"]["p95"], chaos_p99,
             chaos_totals["escaped"]],
        ],
        title=(
            "Extension: SpMV serving under load and chaos "
            f"(contained={chaos_totals['contained']} "
            f"detected={chaos_totals['detected']} "
            f"shed={chaos_totals['shed']})"
        ),
        precision=2,
    )
    publish("serve", table)

    RESULT_JSON.write_text(
        json.dumps(
            {
                "bench": "serve",
                "scale": scale,
                "serving": serving,
                "chaos": {
                    "preset": chaos["preset"],
                    "seed": chaos["seed"],
                    "clean": chaos["clean"],
                    "latency_ms": chaos["chaos"]["latency_ms"],
                    "totals": chaos_totals,
                    "waves": chaos["chaos"]["waves"],
                    "zero_escapes": chaos["zero_escapes"],
                },
                "gates": {
                    "p99_chaos_factor": P99_CHAOS_FACTOR,
                    "p99_grace_ms": P99_GRACE_MS,
                },
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Gate 1: nothing escaped — not in the serving audit, not in the
    # chaos campaign.
    assert serving["wrong_ok_responses"] == 0, (
        f"{serving['wrong_ok_responses']} clean serving response(s) "
        "returned ok with a bitwise-wrong result"
    )
    assert chaos["zero_escapes"], (
        f"{chaos_totals['escaped']} fault(s) escaped the live "
        f"serving layer: {chaos['chaos']['escapes']}"
    )
    # Gate 2: the clean phase never fails a request; anything shed
    # was shed for deadline reasons, never answered unverified.
    assert serving["counts"].get("failed", 0) == 0, (
        f"clean serving produced failed responses: "
        f"{serving['counts']}"
    )
    assert serving["non_deadline_sheds"] == 0, (
        f"{serving['non_deadline_sheds']} clean response(s) shed for "
        "non-deadline reasons at this load level"
    )
    # Gate 3: chaos p99 stays within a generous envelope of the
    # campaign's own clean p99 (same guard config, same machine).
    limit = clean_p99 * P99_CHAOS_FACTOR + P99_GRACE_MS
    assert chaos_p99 <= limit, (
        f"chaos p99 {chaos_p99:.2f} ms blew the envelope "
        f"({clean_p99:.2f} ms clean -> limit {limit:.2f} ms)"
    )
