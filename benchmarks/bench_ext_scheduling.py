"""Extension: tile-to-PE scheduling policy ablation.

DESIGN.md calls out the tile assignment policy as a design choice: the
deployed scheduler is streaming greedy (least-loaded PE first).  This
bench quantifies that choice against the naive round-robin baseline and
the offline LPT (longest-processing-time) bound across the suite, using
the compute-cycle term of the performance model — the resource the
policy actually moves.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.baselines import SpasmModel
from repro.hw.perf_model import perf_breakdown

POLICIES = ("round-robin", "greedy", "lpt")


def test_ext_scheduling_policies(benchmark, suite, spasm_model):
    def sweep():
        rows = []
        for name, coo in suite:
            program = spasm_model.program(coo)
            gc = program.spasm.global_composition()
            cycles = {
                policy: perf_breakdown(
                    gc, program.hw_config, program.tile_size,
                    policy=policy,
                ).compute_cycles
                for policy in POLICIES
            }
            rows.append((name, cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = []
    for name, cycles in rows:
        rr, greedy, lpt = (cycles[p] for p in POLICIES)
        table_rows.append([name, rr, greedy, lpt, rr / max(greedy, 1)])
    gains = [row[4] for row in table_rows]
    gm = math.exp(sum(math.log(v) for v in gains) / len(gains))
    table_rows.append(["geomean", "", "", "", gm])
    table = format_table(
        [
            "matrix", "round-robin cyc", "greedy cyc", "lpt cyc",
            "greedy gain",
        ],
        table_rows,
        title="Extension: scheduling policy compute-cycle ablation",
    )
    publish("ext_scheduling", table)

    for name, cycles in rows:
        # Greedy never loses to round-robin; offline LPT never loses
        # to streaming greedy.
        assert cycles["greedy"] <= cycles["round-robin"] + 1e-9, name
        assert cycles["lpt"] <= cycles["greedy"] + 1e-9, name
    # And the deployed greedy policy wins materially somewhere.
    assert max(gains) > 1.1
