"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's experiment index), prints it, and
writes it to ``benchmarks/results/<experiment>.txt`` so the output
survives pytest's stdout capture.  The ``benchmark`` fixture times the
computation that produces the data.

Set ``REPRO_BENCH_SCALE`` to grow the synthetic workloads toward paper
size (default 1.0 keeps everything laptop-fast).
"""

import os
import pathlib

import pytest

from repro.baselines import (
    CuSparseRTX3090Model,
    HiSparseModel,
    SERPENS_A16,
    SERPENS_A24,
    SpasmModel,
)
from repro.synth import load_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    """Workload scale factor (env-tunable)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def suite():
    """The 20-matrix Table II suite as (name, matrix) pairs."""
    return [
        (spec.name, matrix)
        for spec, matrix in load_suite(scale=bench_scale())
    ]


@pytest.fixture(scope="session")
def suite_specs():
    """The suite with full spec objects attached."""
    return list(load_suite(scale=bench_scale()))


@pytest.fixture(scope="session")
def spasm_model():
    """One SPASM model shared across benchmarks (compilations cached)."""
    return SpasmModel()


@pytest.fixture(scope="session")
def baseline_models():
    """The four paper baselines in Table III order."""
    return [
        HiSparseModel(),
        SERPENS_A16(),
        SERPENS_A24(),
        CuSparseRTX3090Model(),
    ]


def publish(experiment: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    print(f"\n=== {experiment} ===\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n", encoding="utf-8")
