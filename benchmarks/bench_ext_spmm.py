"""Extension: multi-vector SpMM scaling.

Batching vectors (Y = A @ X) streams the sparse matrix once per batch,
so the A-value and position streams amortize across the batch while
compute, x and y traffic scale with it.  The modeled consequence — and
the architectural insight this bench documents — is that SpMM helps
exactly the matrices whose bottleneck is the A stream (e.g. x104's
value-stream-bound row segments), and quickly saturates at the VALU
issue rate everywhere else: once every PE issues one group per cycle,
extra vectors add FLOPs and cycles in equal measure.
"""

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.hw.configs import SPASM_4_1
from repro.hw.perf_model import estimate_spmm_gflops, perf_breakdown

MATRICES = ("x104", "raefsky3", "ML_Laplace", "tmt_sym")
VECTOR_COUNTS = (1, 2, 4, 8, 16, 32)


def test_ext_spmm_scaling(benchmark, suite, spasm_model):
    by_name = dict(suite)

    def sweep():
        rows = []
        for name in MATRICES:
            coo = by_name[name]
            program = spasm_model.program(coo)
            gc = program.spasm.global_composition()
            series = [
                estimate_spmm_gflops(
                    gc, SPASM_4_1, coo.nnz, coo.shape[0], n
                )
                for n in VECTOR_COUNTS
            ]
            bottleneck = perf_breakdown(gc, SPASM_4_1).bottleneck
            rows.append((name, series, bottleneck))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["matrix"] + [f"n={n}" for n in VECTOR_COUNTS]
        + ["n=1 bottleneck", "gain"],
        [
            [name] + series + [bottleneck, series[-1] / series[0]]
            for name, series, bottleneck in rows
        ],
        title="Extension: modeled SpMM GFLOP/s vs batch size "
              "(SPASM_4_1)",
        precision=1,
    )
    publish("ext_spmm", table)

    gains = {name: series[-1] / series[0] for name, series, __ in rows}
    bottlenecks = {name: b for name, __, b in rows}
    for name, series, __ in rows:
        # Monotone non-decreasing and saturating under peak.
        assert all(
            series[i + 1] >= series[i] - 1e-9
            for i in range(len(series) - 1)
        ), name
        assert series[-1] <= SPASM_4_1.peak_gflops * 1.001
        assert gains[name] >= 1.0
    # The stream-bound matrix gains the most — the amortization story.
    stream_bound = [
        name for name, b in bottlenecks.items()
        if b in ("value-stream", "position-stream")
    ]
    if stream_bound:
        best_stream = max(gains[name] for name in stream_bound)
        others = [g for name, g in gains.items()
                  if name not in stream_bound]
        assert best_stream >= max(others)
