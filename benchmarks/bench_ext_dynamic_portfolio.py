"""Extension: greedy portfolio construction from the template universe.

The paper stops at selecting among ten hand-crafted portfolios because
finding the optimal 16 templates among the C(16,4)=1820 possible ones
is NP-hard (Section V-C).  This bench evaluates the repository's greedy
builder (`repro.core.dynamic`) against that candidate selection on the
whole suite: bytes/nnz under (a) fixed portfolio-0, (b) Algorithm 3
dynamic candidate selection, (c) greedy universe construction, and
(d) the combined best-of-both.

Expected shape: (d) <= (b) <= (a) everywhere, with (c) winning on
matrices whose dominant patterns match none of the Table V families.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.core import (
    GreedyPortfolioBuilder,
    analyze_local_patterns,
    candidate_portfolios,
    select_portfolio,
    select_portfolio_dynamic,
)
from repro.core.dynamic import greedy_storage_bytes
from repro.core.selection import storage_bytes_estimate


def test_ext_dynamic_portfolio(benchmark, suite):
    builder = GreedyPortfolioBuilder()
    portfolio0 = candidate_portfolios()[0]

    def sweep():
        rows = []
        for name, coo in suite:
            hist = analyze_local_patterns(coo)
            fixed = storage_bytes_estimate(hist, portfolio0) / coo.nnz
            selection = select_portfolio(hist)
            cand = (
                storage_bytes_estimate(hist, selection.portfolio)
                / coo.nnz
            )
            greedy_result = builder.build(hist)
            greedy = greedy_storage_bytes(hist, greedy_result) / coo.nnz
            combined_portfolio = select_portfolio_dynamic(hist)
            combined = (
                storage_bytes_estimate(hist, combined_portfolio)
                / coo.nnz
            )
            rows.append((name, fixed, cand, greedy, combined))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def gm(idx):
        return math.exp(
            sum(math.log(r[idx]) for r in rows) / len(rows)
        )

    table_rows = [list(r) for r in rows]
    table_rows.append(["geomean", gm(1), gm(2), gm(3), gm(4)])
    table = format_table(
        [
            "matrix", "fixed p0 B/nnz", "candidates B/nnz",
            "greedy B/nnz", "combined B/nnz",
        ],
        table_rows,
        title="Extension: dynamic portfolio construction",
    )
    publish("ext_dynamic_portfolio", table)

    for name, fixed, cand, greedy, combined in rows:
        # Combined dominates candidate selection, which dominates the
        # fixed portfolio.
        assert combined <= cand + 1e-9, name
        assert cand <= fixed + 1e-9, name
    # The greedy universe build wins outright somewhere.
    assert any(greedy < cand - 1e-9 for __, __, cand, greedy, __ in rows)
