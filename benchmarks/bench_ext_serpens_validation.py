"""Extension: event-level validation of the Serpens baseline model.

The Figure 12 comparison rests on a calibrated analytic Serpens model.
This bench runs the first-principles event simulator (per-lane record
streams, FP-accumulator hazards, roofline memory term) over a suite
subset and reports both predictions side by side.  The event simulator
idealizes away shuffle/burst overheads, so it must bound the analytic
model from above — and by a roughly constant factor, confirming the
calibration shifts rather than distorts the per-matrix shape.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.baselines import SERPENS_A16, SerpensSimulator
from repro.baselines.serpens_sim import cross_check

MATRICES = ("raefsky3", "bbmat", "x104", "tmt_sym", "stormG2_1000",
            "mip1")


def test_ext_serpens_validation(benchmark, suite):
    by_name = dict(suite)
    analytic = SERPENS_A16()
    simulator = SerpensSimulator(num_channels=16)

    def sweep():
        return {
            name: cross_check(by_name[name], analytic, simulator)
            for name in MATRICES
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            name,
            r["analytic_gflops"],
            r["event_gflops"],
            r["stall_cycles"],
            r["ratio"],
        ]
        for name, r in results.items()
    ]
    ratios = [r["ratio"] for r in results.values()]
    gm = math.exp(sum(math.log(v) for v in ratios) / len(ratios))
    rows.append(["geomean", "", "", "", gm])
    table = format_table(
        [
            "matrix", "analytic GF/s", "event GF/s", "stalls",
            "event/analytic",
        ],
        rows,
        title="Extension: Serpens analytic model vs event simulator",
    )
    publish("ext_serpens_validation", table)

    for name, r in results.items():
        # Idealized event sim bounds the calibrated model from above.
        assert r["ratio"] > 1.0, name
    # The gap is a roughly constant calibration factor, not a shape
    # distortion: spread within ~6x across very different structures.
    assert max(ratios) / min(ratios) < 6.0
