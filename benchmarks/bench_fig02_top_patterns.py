"""Figure 2: top-8 occurring local patterns and their frequencies.

The paper plots the top-8 4x4 patterns of raefsky4 (we use the closely
related raefsky3 stand-in) and Chebyshev4; this bench regenerates the
ranked pattern list with ASCII art and benchmarks the Algorithm 2
histogram construction that produces it.
"""

from benchmarks.conftest import publish
from repro.analysis.frequency import top_pattern_report
from repro.core import analyze_local_patterns

MATRICES = ("raefsky3", "Chebyshev4")


def test_fig02_top_patterns(benchmark, suite):
    by_name = dict(suite)
    target = by_name[MATRICES[0]]

    histogram = benchmark(analyze_local_patterns, target)

    sections = [top_pattern_report(MATRICES[0], histogram)]
    for name in MATRICES[1:]:
        sections.append(
            top_pattern_report(name, analyze_local_patterns(by_name[name]))
        )
    publish("fig02_top_patterns", "\n\n".join(sections))

    # Paper shape: a handful of patterns dominates each matrix.
    assert histogram.coverage_of_top(8) > 0.4
