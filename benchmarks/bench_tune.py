"""Extension: per-matrix autotuning (``repro.tune``) vs the defaults.

For each workload class the tuner searches the knob space — candidate
portfolio, tile size, index/value layout, kernel backend, shard jobs,
batch block width — with the paper's step ④ analytic model as a
first-pass pruner and measured best-of-N timing on the survivors.
This bench quantifies what that buys over the static defaults and
gates the tuner's contracts:

* ``agree`` — the tuned executor must reproduce the naive float64
  reference **bitwise**, at every scale (tuning is a dispatch
  optimization, never a numeric change);
* ``cache_hit`` — a second ``tune_matrix`` on the unchanged matrix
  must be served from the artifact cache without re-measuring;
* ``pruned_fraction`` — the analytic model must cut the measured
  candidate set by at least half versus the exhaustive grid;
* ``speedup`` — tuned spmv must never lose to the default dispatch
  (10% tolerance), and the geomean across the suite must clear the
  1.2x acceptance bar.

``REPRO_TUNE_MATRICES`` (comma-separated workload names) restricts
the suite for smoke runs; ``REPRO_BENCH_SCALE`` scales the synthetic
matrices as everywhere else.  Results land in ``BENCH_tune.json`` at
the repo root for CI to archive.
"""

import json
import math
import os
import pathlib
import tempfile
import time

import numpy as np

from benchmarks.bench_exec_plan import best_of_pair
from benchmarks.conftest import bench_scale, publish
from repro.analysis.report import format_table
from repro.core import SpasmCompiler
from repro.pipeline import ArtifactCache
from repro.synth import load_workload
from repro.tune import tune_matrix

#: (workload, base scale): the same three structure classes as the
#: exec bench plus three more Table II entries for geomean stability.
CLASSES = (
    ("tmt_sym", 2.0),
    ("raefsky3", 1.0),
    ("mycielskian14", 0.5),
    ("ex11", 1.0),
    ("Goodwin_054", 1.0),
    ("t2em", 1.0),
)
BATCH_QUERIES = 8
RESULT_JSON = pathlib.Path(__file__).parent.parent / "BENCH_tune.json"


def selected_classes():
    """The workload sweep, optionally narrowed by env for smoke runs."""
    only = os.environ.get("REPRO_TUNE_MATRICES")
    if not only:
        return CLASSES
    names = {n.strip() for n in only.split(",") if n.strip()}
    picked = [c for c in CLASSES if c[0] in names]
    if not picked:
        raise SystemExit(
            f"REPRO_TUNE_MATRICES={only!r} matches no bench workload "
            f"(choose from {', '.join(n for n, _ in CLASSES)})"
        )
    return picked


def measure(name, scale, cache):
    coo = load_workload(name, scale=scale)

    t0 = time.perf_counter()
    result = tune_matrix(coo, cache=cache, repeats=2,
                         batch_queries=BATCH_QUERIES)
    tune_wall_ms = (time.perf_counter() - t0) * 1e3
    again = tune_matrix(coo, cache=cache, repeats=2,
                        batch_queries=BATCH_QUERIES)
    cfg = result.config

    program = SpasmCompiler(build_plan=True).compile(coo)
    spasm, plan = program.spasm, program.plan
    executor = spasm.apply_tuned(cfg)
    rng = np.random.default_rng(7)
    x = rng.random(spasm.shape[1])
    xs = np.ascontiguousarray(
        rng.random((BATCH_QUERIES, spasm.shape[1]))
    )
    reference = spasm.spmv_naive(x)
    agree = bool(
        np.array_equal(executor.spmv(x), reference)
        and np.array_equal(executor.spmv_batch(xs),
                           plan.spmv_batch(xs))
    )
    # Independent re-measurement (interleaved, drift-immune) rather
    # than trusting the numbers the search itself recorded.
    tuned_s, default_s = best_of_pair(
        lambda: executor.spmv(x),
        lambda: plan.spmv(x),
    )
    tuned_batch_s, default_batch_s = best_of_pair(
        lambda: executor.spmv_batch(xs),
        lambda: plan.spmv_batch(xs),
    )
    spasm.apply_tuned(None)

    pruned_fraction = (
        1.0 - cfg.candidates_measured / cfg.candidates_total
        if cfg.candidates_total else 0.0
    )
    return {
        "matrix": name,
        "scale": scale,
        "shape": list(coo.shape),
        "nnz": int(coo.nnz),
        "tune_wall_ms": tune_wall_ms,
        "cache_hit": bool(again.cache_hit),
        "config": cfg.as_dict(),
        "candidates_total": cfg.candidates_total,
        "candidates_measured": cfg.candidates_measured,
        "pruned_fraction": pruned_fraction,
        "tuned_spmv_ms": tuned_s * 1e3,
        "default_spmv_ms": default_s * 1e3,
        "speedup": default_s / tuned_s,
        "tuned_batch_qps": BATCH_QUERIES / tuned_batch_s,
        "default_batch_qps": BATCH_QUERIES / default_batch_s,
        "batch_speedup": default_batch_s / tuned_batch_s,
        "agree": agree,
    }


def test_tune_suite(benchmark):
    scale = bench_scale()
    classes = selected_classes()

    def sweep():
        with tempfile.TemporaryDirectory() as cache_dir:
            cache = ArtifactCache(cache_dir)
            return [
                measure(name, base * scale, cache)
                for name, base in classes
            ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in results) / len(results)
    )
    table = format_table(
        ["matrix", "nnz", "default ms", "tuned ms", "speedup",
         "batch x", "measured/total", "layout", "backend", "agree"],
        [
            [r["matrix"], r["nnz"], r["default_spmv_ms"],
             r["tuned_spmv_ms"], r["speedup"], r["batch_speedup"],
             f"{r['candidates_measured']}/{r['candidates_total']}",
             r["config"]["index"] + "/" + r["config"]["precision"],
             r["config"]["backend"],
             "yes" if r["agree"] else "NO"]
            for r in results
        ],
        title=f"Extension: per-matrix autotuning vs defaults "
              f"(geomean {geomean:.2f}x)",
        precision=2,
    )
    publish("tune", table)

    RESULT_JSON.write_text(
        json.dumps(
            {
                "bench": "tune",
                "scale": scale,
                "matrices": [r["matrix"] for r in results],
                "geomean_speedup": geomean,
                "pruned_fraction_min": min(
                    r["pruned_fraction"] for r in results
                ),
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    for r in results:
        # Tuning is a dispatch optimization, never a numeric change.
        assert r["agree"], (
            f"{r['matrix']}: tuned executor diverges bitwise from "
            "the naive reference"
        )
        # Persisted records short-circuit the search entirely.
        assert r["cache_hit"], (
            f"{r['matrix']}: second tune_matrix was not served from "
            "the artifact cache"
        )
        # The analytic model must do real pruning work.
        assert r["pruned_fraction"] >= 0.5, (
            f"{r['matrix']}: model pruned only "
            f"{r['pruned_fraction']:.0%} of the candidate grid"
        )
        # Tuned must never lose to the default dispatch.
        assert r["tuned_spmv_ms"] <= r["default_spmv_ms"] * 1.10, (
            f"{r['matrix']}: tuned spmv {r['tuned_spmv_ms']:.3f} ms "
            f"slower than default {r['default_spmv_ms']:.3f} ms"
        )
    assert geomean >= 1.2, (
        f"geomean tuned speedup {geomean:.2f}x below the 1.2x "
        "acceptance bar"
    )
