"""Figure 9: storage costs under different local pattern sizes.

Sweeps 2x2, 3x3 and 4x4 local patterns over the suite and reports the
SPASM bytes-per-nnz of the best portfolio at each size.  The paper's
finding: 2x2 and 4x4 are marginally more efficient than 3x3, and 4x4 is
chosen for parallelism.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.analysis.storage_compare import pattern_size_sweep

KS = (2, 3, 4)


def test_fig09_pattern_size(benchmark, suite):
    result = benchmark(pattern_size_sweep, suite, KS)

    rows = [
        [name] + [per_k[k] for k in KS] for name, per_k in result.items()
    ]
    geomeans = [
        math.exp(
            sum(math.log(per_k[k]) for per_k in result.values())
            / len(result)
        )
        for k in KS
    ]
    rows.append(["geomean"] + geomeans)
    table = format_table(
        ["matrix"] + [f"{k}x{k} B/nnz" for k in KS],
        rows,
        title="Figure 9: storage cost vs local pattern size",
    )
    publish("fig09_pattern_size", table)

    # Paper shape: every size beats raw COO (12 B/nnz) on average, and
    # the 4x4 choice is no worse than 3x3 overall.
    assert all(gm < 12.0 for gm in geomeans)
    assert geomeans[KS.index(4)] <= geomeans[KS.index(3)] * 1.05
