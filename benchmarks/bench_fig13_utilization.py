"""Figure 13: percentage of peak bandwidth and compute utilized.

Paper shape: SPASM sustains a far higher fraction of both its peak
bandwidth and its peak compute than the FPGA baselines and the GPU —
the payoff of the customized format (fewer bytes per useful FLOP) and
the schedule exploration (balanced PEs).
"""

from benchmarks.conftest import publish
from repro.analysis.metrics import geomean, utilization_table
from repro.analysis.report import format_table


def test_fig13_utilization(benchmark, suite, spasm_model, baseline_models):
    rows = benchmark.pedantic(
        utilization_table,
        args=(suite, spasm_model, baseline_models),
        rounds=1,
        iterations=1,
    )

    platforms = ["SPASM"] + [m.name for m in baseline_models]
    table_rows = []
    for row in rows:
        table_rows.append(
            [row["name"]]
            + [row[p]["bandwidth"] * 100 for p in platforms]
            + [row[p]["compute"] * 100 for p in platforms]
        )
    headers = (
        ["matrix"]
        + [f"{p} bw%" for p in platforms]
        + [f"{p} comp%" for p in platforms]
    )
    table = format_table(
        headers, table_rows,
        title="Figure 13: % of peak bandwidth / compute utilized",
        precision=1,
    )

    summary = {
        p: {
            "bandwidth": geomean([row[p]["bandwidth"] for row in rows]),
            "compute": geomean([row[p]["compute"] for row in rows]),
        }
        for p in platforms
    }
    lines = [table, "", "Geomean utilization:"]
    for p in platforms:
        lines.append(
            f"  {p:<12s} bandwidth {summary[p]['bandwidth'] * 100:5.1f}%  "
            f"compute {summary[p]['compute'] * 100:5.1f}%"
        )
    publish("fig13_utilization", "\n".join(lines))

    # SPASM's utilization beats every baseline on both axes (geomean).
    for p in platforms[1:]:
        assert summary["SPASM"]["bandwidth"] > summary[p]["bandwidth"]
        assert summary["SPASM"]["compute"] > summary[p]["compute"]
