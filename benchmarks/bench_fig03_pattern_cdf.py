"""Figure 3: CDF of the top-n occurring local patterns across matrices.

Regenerates the cumulative coverage series for the whole Table II suite
and benchmarks the suite-wide histogram pass.
"""

from benchmarks.conftest import publish
from repro.analysis.frequency import pattern_cdf_table
from repro.core import analyze_local_patterns

TOP_NS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_fig03_pattern_cdf(benchmark, suite):
    def suite_histograms():
        return [analyze_local_patterns(coo) for __, coo in suite]

    histograms = benchmark(suite_histograms)

    from repro.analysis.charts import line_chart

    chart_names = ("raefsky3", "cfd2", "stormG2_1000")
    by_name = dict(suite)
    series = {
        name: [
            analyze_local_patterns(by_name[name]).coverage_of_top(n)
            * 100.0
            for n in TOP_NS
        ]
        for name in chart_names
    }
    chart = line_chart(
        series,
        title="CDF of top-n local patterns (%)",
        x_labels=[f"top-{TOP_NS[0]}", f"top-{TOP_NS[-1]}"],
    )
    publish(
        "fig03_pattern_cdf",
        pattern_cdf_table(suite, TOP_NS) + "\n\n" + chart,
    )

    # Paper shape: for most matrices a small top-n already dominates;
    # top-64 must capture the majority of submatrices on the bulk of
    # the suite.
    strong = sum(1 for h in histograms if h.coverage_of_top(64) > 0.5)
    assert strong >= len(histograms) * 0.7
