"""Extension: pattern-portfolio flexibility across mismatched inputs.

The paper's abstract claims: "although SPASM can optimize the pattern
portfolio for a particular set of expected input matrices, the
generated hardware can flexibly be used to accelerate SpMV of different
input patterns albeit with reduced performance."  This bench makes that
claim measurable: encode every matrix of a structurally diverse subset
under the portfolio selected for every *other* matrix, and report the
storage penalty of the mismatch; a portfolio selected for the merged
set (``select_portfolio_for_set``) sits between own-choice and
worst-mismatch.
"""

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.core import analyze_local_patterns, select_portfolio
from repro.core.selection import (
    select_portfolio_for_set,
    storage_bytes_estimate,
)

MATRICES = ("raefsky3", "c-73", "t2em", "x104")


def test_ext_cross_matrix(benchmark, suite):
    by_name = dict(suite)

    def sweep():
        histograms = {
            name: analyze_local_patterns(by_name[name])
            for name in MATRICES
        }
        portfolios = {
            name: select_portfolio(h).portfolio
            for name, h in histograms.items()
        }
        shared = select_portfolio_for_set(
            histograms.values()
        ).portfolio
        cost = {}
        for target in MATRICES:
            row = {}
            for source in MATRICES:
                row[source] = storage_bytes_estimate(
                    histograms[target], portfolios[source]
                ) / by_name[target].nnz
            row["shared"] = storage_bytes_estimate(
                histograms[target], shared
            ) / by_name[target].nnz
            cost[target] = row
        return cost, {n: p.name for n, p in portfolios.items()}

    cost, chosen = benchmark.pedantic(sweep, rounds=1, iterations=1)

    headers = ["run on \\ tuned for"] + [
        f"{n} ({chosen[n]})" for n in MATRICES
    ] + ["shared set"]
    rows = [
        [target] + [cost[target][source] for source in MATRICES]
        + [cost[target]["shared"]]
        for target in MATRICES
    ]
    table = format_table(
        headers, rows,
        title="Extension: bytes/nnz under mismatched portfolios",
    )
    publish("ext_cross_matrix", table)

    for target in MATRICES:
        own = cost[target][target]
        shared = cost[target]["shared"]
        for source in MATRICES:
            # Own portfolio is never beaten by a mismatched one, yet
            # every mismatch still encodes the matrix (flexibility).
            assert cost[target][source] >= own - 1e-9
            assert cost[target][source] < 16.0  # COO is 12; bounded blow-up
        # The set-level portfolio is a compromise: never better than
        # the own choice.
        assert shared >= own - 1e-9
    # And some real mismatch penalty exists (the "reduced performance"
    # half of the claim).
    penalties = [
        cost[t][s] / cost[t][t]
        for t in MATRICES
        for s in MATRICES
        if s != t
    ]
    assert max(penalties) > 1.05
