"""Extension: event-level validation of the HiSparse baseline model.

Companion to ``bench_ext_serpens_validation``: the first-principles
HiSparse simulator (row-striped channels, bank-conflict shuffle,
column-pass x windows) runs over a suite subset next to the calibrated
analytic model.  The event simulator idealizes packing and burst
behaviour, so it must bound the analytic model from above by a roughly
constant factor — and its *conflict* accounting should single out the
same matrices the analytic model penalizes for imbalance.
"""

import math

import numpy as np

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.baselines import HiSparseModel
from repro.baselines.hisparse_sim import HiSparseSimulator

MATRICES = ("raefsky3", "bbmat", "x104", "tmt_sym", "stormG2_1000",
            "mip1")


def test_ext_hisparse_validation(benchmark, suite):
    by_name = dict(suite)
    analytic = HiSparseModel()
    simulator = HiSparseSimulator()

    def sweep():
        out = {}
        for name in MATRICES:
            coo = by_name[name]
            run = simulator.run(coo, np.ones(coo.shape[1]))
            out[name] = {
                "analytic": analytic.gflops(coo),
                "event": run.gflops,
                "conflicts": run.conflict_cycles,
                "passes": run.passes,
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            name,
            r["analytic"],
            r["event"],
            r["conflicts"],
            r["passes"],
            r["event"] / r["analytic"],
        ]
        for name, r in results.items()
    ]
    ratios = [r[-1] for r in rows]
    gm = math.exp(sum(math.log(v) for v in ratios) / len(ratios))
    rows.append(["geomean", "", "", "", "", gm])
    table = format_table(
        [
            "matrix", "analytic GF/s", "event GF/s", "conflicts",
            "passes", "event/analytic",
        ],
        rows,
        title="Extension: HiSparse analytic model vs event simulator",
    )
    publish("ext_hisparse_validation", table)

    for name, r in results.items():
        assert r["event"] > r["analytic"], name
    assert max(ratios) / min(ratios) < 12.0
    # The imbalanced matrix must show real shuffle serialization.
    assert results["mip1"]["conflicts"] > results["tmt_sym"]["conflicts"]
