"""Extension: accuracy of Algorithm 3's top-n scoring shortcut.

The paper argues (Section IV-B) that scoring only the top-n patterns is
enough to rank portfolios "because the top-n patterns hold significant
importance and account for the majority of patterns present".  This
bench quantifies the claim across the suite: portfolios are selected
while scoring only enough patterns to reach a coverage target, and the
resulting storage cost is compared against full scoring.

Expected shape: even 50% coverage picks a near-optimal portfolio for
almost every matrix, while scoring dramatically fewer patterns — the
shortcut is nearly free in quality and large in preprocessing savings.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.core import analyze_local_patterns, select_portfolio
from repro.core.selection import storage_bytes_estimate

COVERAGES = (0.5, 0.9, 1.0)


def test_ext_topn_selection(benchmark, suite):
    def sweep():
        rows = []
        for name, coo in suite:
            hist = analyze_local_patterns(coo)
            per_cov = {}
            scored = {}
            for coverage in COVERAGES:
                result = select_portfolio(hist, coverage=coverage)
                per_cov[coverage] = storage_bytes_estimate(
                    hist, result.portfolio
                ) / coo.nnz
                scored[coverage] = result.scored_patterns
            rows.append((name, per_cov, scored, hist.n_distinct))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table_rows = []
    for name, per_cov, scored, n_distinct in rows:
        table_rows.append(
            [name]
            + [per_cov[c] for c in COVERAGES]
            + [scored[0.5], n_distinct]
        )
    overheads = [
        per_cov[0.5] / per_cov[1.0] for __, per_cov, __, __ in rows
    ]
    gm = math.exp(sum(math.log(v) for v in overheads) / len(overheads))
    table_rows.append(["geomean 50% vs full", "", "", "", "", f"{gm:.4f}x"])
    table = format_table(
        ["matrix"]
        + [f"B/nnz @cov={c}" for c in COVERAGES]
        + ["patterns @0.5", "distinct"],
        table_rows,
        title="Extension: Algorithm 3 top-n shortcut accuracy",
    )
    publish("ext_topn_selection", table)

    for name, per_cov, scored, n_distinct in rows:
        # Lower coverage never scores more patterns...
        assert scored[0.5] <= n_distinct
        # ...and costs at most a few percent of storage quality.
        assert per_cov[0.5] <= per_cov[1.0] * 1.10, name
    # Overall the shortcut is essentially free.
    assert gm < 1.02
    # And it prunes real work on the diffuse matrices.
    assert any(
        scored[0.5] < n_distinct / 4
        for __, __, scored, n_distinct in rows
    )
