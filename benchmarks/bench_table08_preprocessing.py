"""Table VIII: preprocessing and execution time of selected workloads.

Times the four preprocessing stages (① pattern analysis, ② template
selection, ③ decomposition, ④⑤ schedule exploration) and the modeled
execution time for the paper's four selected matrices, then reports the
amortization break-even versus Serpens_a24 — the paper's Chebyshev4
example needs ~298 iterations before preprocessing pays for itself.
"""

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.baselines import SERPENS_A24
from repro.core import SpasmCompiler

MATRICES = ("ML_Laplace", "PFlow_742", "raefsky3", "Chebyshev4")


def test_table08_preprocessing(benchmark, suite):
    by_name = dict(suite)
    compiler = SpasmCompiler()
    serpens = SERPENS_A24()

    def preprocess_all():
        return {
            name: compiler.compile(by_name[name]) for name in MATRICES
        }

    programs = benchmark.pedantic(preprocess_all, rounds=1, iterations=1)

    rows = []
    for name in MATRICES:
        program = programs[name]
        trace = program.trace
        prep_ms = trace.total_ms
        exe_ms = (
            program.estimate().total_cycles
            / program.hw_config.frequency_hz
            * 1e3
        )
        serpens_ms = serpens.time_s(by_name[name]) * 1e3
        saved_ms = serpens_ms - exe_ms
        breakeven = (
            prep_ms / saved_ms if saved_ms > 0 else float("inf")
        )
        rows.append(
            [
                name,
                trace.stage_ms("analysis"),
                trace.stage_ms("selection"),
                trace.stage_ms("decomposition"),
                trace.stage_ms("schedule"),
                exe_ms,
                breakeven,
            ]
        )

    table = format_table(
        [
            "name", "(1) ms", "(2) ms", "(3) ms", "(4)(5) ms",
            "exe ms", "break-even iters",
        ],
        rows,
        title="Table VIII: preprocessing and execution time",
        precision=3,
    )
    publish("table08_preprocessing", table)

    for row in rows:
        # All stages measurable and execution far cheaper than prep —
        # the amortization argument of Section V-E4.
        total_prep = sum(row[1:5])
        assert total_prep > 0
        assert row[5] < total_prep
        assert row[6] > 1
