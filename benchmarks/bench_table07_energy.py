"""Table VII: power consumption and energy efficiency.

Paper shape: SPASM reaches the best (GFLOP/s)/W (1.24 reported), ahead
of Serpens (0.97), HiSparse (0.37) and the RTX 3090 (0.23) — the GPU's
throughput lead cannot offset its 333 W board power.
"""

from benchmarks.conftest import publish
from repro.analysis.metrics import energy_table
from repro.analysis.report import format_table


def test_table07_energy(benchmark, suite, spasm_model, baseline_models):
    rows = benchmark.pedantic(
        energy_table,
        args=(suite, spasm_model, baseline_models),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["platform", "power (W)", "geomean GFLOP/s", "(GFLOP/s)/W"],
        [
            [r["name"], r["power_w"], r["gflops"], r["efficiency"]]
            for r in rows
        ],
        title="Table VII: power and energy efficiency",
    )
    publish("table07_energy", table)

    eff = {r["name"]: r["efficiency"] for r in rows}
    power = {r["name"]: r["power_w"] for r in rows}
    # SPASM: best energy efficiency of every platform.
    assert eff["SPASM"] == max(eff.values())
    # FPGA platforms beat (Serpens) or at least match (HiSparse, which
    # the paper puts at 0.37 vs the GPU's 0.23) the GPU on efficiency
    # despite far lower GFLOP/s.
    assert eff["Serpens_a24"] > eff["RTX 3090"]
    assert eff["HiSparse"] > eff["RTX 3090"] * 0.5
    # Power model sanity: SPASM averages near the reported 58 W.
    assert 50.0 < power["SPASM"] < 66.0
    assert power["RTX 3090"] == 333.0
