"""Figure 12: throughput and bandwidth efficiency vs all baselines.

Runs the full SPASM pipeline (pattern analysis -> portfolio selection ->
decomposition -> schedule exploration -> perf model) per matrix and
compares modeled GFLOP/s and (GFLOP/s)/(GB/s) against HiSparse,
Serpens_a16/a24 and cuSPARSE on the RTX 3090.

Paper shape targets: geomean speedups ~6.74x / 3.21x / 2.81x over
HiSparse / Serpens_a16 / Serpens_a24, and ~0.75x vs the GPU with SPASM
winning on the most structured matrices; bandwidth-efficiency geomeans
~4.18x / 2.21x / 2.71x / 1.68x.
"""

from benchmarks.conftest import publish
from repro.analysis.metrics import (
    bandwidth_efficiency_table,
    render_throughput,
    throughput_table,
)


def test_fig12_throughput(benchmark, suite, spasm_model, baseline_models):
    result = benchmark.pedantic(
        throughput_table,
        args=(suite, spasm_model, baseline_models),
        rounds=1,
        iterations=1,
    )

    from repro.analysis.charts import bar_chart

    names = [m.name for m in baseline_models]
    text = [render_throughput(result, names)]
    text.append("")
    text.append(bar_chart(
        names,
        [result["summary"][n]["geomean"] for n in names],
        title="Geomean SPASM speedup per baseline (x)",
        unit="x",
    ))

    be = bandwidth_efficiency_table(suite, spasm_model, baseline_models)
    text.append("")
    text.append("Bandwidth efficiency improvement (min / geomean / max):")
    for name, s in be["summary"].items():
        text.append(
            f"  vs {name:<12s} {s['min']:.2f}x / {s['geomean']:.2f}x / "
            f"{s['max']:.2f}x"
        )
    publish("fig12_throughput", "\n".join(text))

    summary = result["summary"]
    # Ordering of the FPGA baselines must match the paper.
    assert (
        summary["HiSparse"]["geomean"]
        > summary["Serpens_a16"]["geomean"]
        > summary["Serpens_a24"]["geomean"]
        > 1.0
    )
    # Rough magnitudes (the shape, not exact numbers).
    assert 4.0 < summary["HiSparse"]["geomean"] < 10.0
    assert 2.0 < summary["Serpens_a16"]["geomean"] < 5.0
    assert 1.8 < summary["Serpens_a24"]["geomean"] < 4.5
    # GPU wins on geomean but SPASM wins somewhere.
    assert summary["RTX 3090"]["geomean"] < 1.0
    assert summary["RTX 3090"]["max"] > 1.0
    # Bandwidth efficiency favors SPASM against every platform.
    for name in names:
        assert be["summary"][name]["geomean"] > 1.0
