"""Figure 10: storage costs of different template pattern selections.

Decomposes every suite matrix under each of the ten Table V candidate
portfolios plus the dynamic (per-matrix best) selection, reporting
bytes-per-nnz.  The paper's finding: no single portfolio fits all
matrices; dynamic selection is never worse than any fixed choice.
"""

import math

from benchmarks.conftest import publish
from repro.analysis.report import format_table
from repro.analysis.storage_compare import template_selection_sweep


def test_fig10_template_selection(benchmark, suite):
    result = benchmark(template_selection_sweep, suite)

    columns = [f"portfolio-{i}" for i in range(10)] + ["dynamic"]
    rows = [
        [name] + [row[c] for c in columns]
        for name, row in result.items()
    ]
    geomeans = []
    for c in columns:
        values = [row[c] for row in result.values()]
        geomeans.append(
            math.exp(sum(math.log(v) for v in values) / len(values))
        )
    rows.append(["geomean"] + geomeans)
    table = format_table(
        ["matrix"] + [c.replace("portfolio-", "p") for c in columns],
        rows,
        title="Figure 10: SPASM bytes/nnz per template portfolio",
    )
    publish("fig10_template_selection", table)

    # Dynamic selection dominates every fixed portfolio.
    dynamic_gm = geomeans[-1]
    assert all(dynamic_gm <= gm + 1e-9 for gm in geomeans[:-1])
    # No one-fits-all: different matrices prefer different portfolios.
    winners = {
        min(
            (c for c in columns[:-1]),
            key=lambda c: result[name][c],
        )
        for name in result
    }
    assert len(winners) >= 2
