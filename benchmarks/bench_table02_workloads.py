"""Table II: the benchmark workload suite.

Regenerates the suite characterization — nnz, density, top-8 local
pattern coverage and a global composition tag per matrix — next to the
published SuiteSparse statistics each synthetic instance stands in for.
"""

from benchmarks.conftest import bench_scale, publish
from repro.analysis.report import format_table
from repro.core import analyze_local_patterns
from repro.synth import load_suite


def test_table02_workloads(benchmark, suite_specs):
    def build_and_characterize():
        rows = []
        for spec, coo in suite_specs:
            histogram = analyze_local_patterns(coo)
            rows.append(
                [
                    spec.name,
                    spec.domain,
                    f"{spec.paper_nnz:.2e}",
                    f"{spec.paper_density:.2e}",
                    coo.nnz,
                    f"{coo.density:.2e}",
                    f"{histogram.coverage_of_top(8) * 100:.1f}%",
                    spec.pattern_kind,
                ]
            )
        return rows

    rows = benchmark(build_and_characterize)

    table = format_table(
        [
            "name", "domain", "paper nnz", "paper density",
            "synth nnz", "synth density", "top-8", "pattern kind",
        ],
        rows,
        title=f"Table II workload suite (scale={bench_scale()})",
    )
    publish("table02_workloads", table)

    assert len(rows) == 20
    # One fresh rebuild must agree with the fixture (determinism).
    rebuilt = {
        spec.name: m.nnz for spec, m in load_suite(scale=bench_scale())
    }
    for spec, coo in suite_specs:
        assert rebuilt[spec.name] == coo.nnz
